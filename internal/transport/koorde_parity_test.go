package transport

import (
	"fmt"
	"testing"

	"streamdex/internal/chord"
	"streamdex/internal/dht"
	"streamdex/internal/koorde"
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// TestKoordeParitySimVsLive is the substrate-neutrality acceptance test
// for the second routing machine: a simulated Koorde node and a live
// transport node are two adapters around the same koorde.Machine, so when
// both start from the identical ring snapshot (successor list,
// predecessor, de Bruijn pointer chain) and consume the identical
// control-message trace — including stateful KFindReq walks and KDList
// pointer repair — they must make bit-for-bit identical routing
// decisions after every single message. Runs under -race in CI.
func TestKoordeParitySimVsLive(t *testing.T) {
	space := dht.NewSpace(16)
	ids := []dht.Key{100, 9000, 21000, 40000, 61000}

	// Simulated side: a converged 5-node Koorde ring built by the generic
	// substrate; we adopt the middle node's machine. The engine is never
	// run, so the trace below is its sole stimulus.
	eng := sim.NewEngine()
	net := chord.New(eng, chord.Config{
		Space: space, HopDelay: sim.Millisecond, SuccListLen: 4, Machine: koorde.MachineName,
	})
	net.BuildStable(ids, nil)
	simM, ok := net.Node(ids[2]).Machine().(*koorde.Machine)
	if !ok {
		t.Fatalf("substrate %q did not build koorde machines", koorde.MachineName)
	}

	// Live side: one real transport node with the same identifier and
	// machine family, given the same ring snapshot.
	node, err := New(Config{
		ID: ids[2], Listen: "127.0.0.1:0", Space: space,
		StabilizeEvery: 500_000, FixFingersEvery: 250_000, SuccListLen: 4,
		Machine: koorde.MachineName,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	var pred *koorde.Ref
	if p, ok := simM.Predecessor(); ok {
		pp := p
		pred = &pp
	}
	succList := simM.SuccessorList()
	chain := simM.DeBruijnList()
	if len(chain) == 0 {
		t.Fatal("sim de Bruijn chain unpopulated after BuildStable")
	}
	node.Do(func() { node.ring.InstallRing(pred, succList, chain) })

	// Deterministic trace over ring-member refs: stateful lookups (fresh,
	// mid-walk and exhausted states, including TTL exhaustion), stale find
	// answers, stabilize exchanges, notifies, pings, and de Bruijn pointer
	// repair in both directions.
	members := make([]koorde.Ref, len(ids))
	for i, id := range ids {
		members[i] = koorde.Ref{ID: id}
	}
	rnd := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return (rnd >> 33) % n
	}
	var trace []any
	for i := 0; i < 200; i++ {
		switch next(7) {
		case 0:
			req := koorde.KFindReq{
				From: members[next(5)], Token: 1000 + uint64(i),
				Target: dht.Key(next(1 << 16)), TTL: int(next(8)), ReplyTo: members[next(5)],
			}
			switch next(3) {
			case 0:
				req.Shift = koorde.ShiftNone // unanchored
			case 1:
				req.I, req.Shift = dht.Key(next(1<<16)), uint8(next(4)) // mid-walk
			case 2:
				req.I, req.Shift = req.Target, 0 // exhausted
			}
			trace = append(trace, req)
		case 1:
			trace = append(trace, koorde.KFindResp{From: members[next(5)], Token: next(2000), Succ: members[next(5)]})
		case 2:
			trace = append(trace, koorde.KStabReq{From: members[next(5)]})
		case 3:
			sr := koorde.KStabResp{
				From:     members[next(5)],
				SuccList: []koorde.Ref{members[next(5)], members[next(5)], members[next(5)]},
			}
			if next(2) == 0 {
				sr.HasPred, sr.Pred = true, members[next(5)]
			}
			trace = append(trace, sr)
		case 4:
			trace = append(trace, koorde.KNotify{From: members[next(5)]})
		case 5:
			if next(2) == 0 {
				trace = append(trace, koorde.KPingReq{From: members[next(5)]})
			} else {
				trace = append(trace, koorde.KPingResp{From: members[next(5)]})
			}
		case 6:
			if next(2) == 0 {
				trace = append(trace, koorde.KDListReq{From: members[next(5)]})
			} else {
				dr := koorde.KDListResp{
					From:     members[next(5)],
					SuccList: []koorde.Ref{members[next(5)], members[next(5)], members[next(5)]},
				}
				if next(2) == 0 {
					dr.HasPred, dr.Pred = true, members[next(5)]
				}
				trace = append(trace, dr)
			}
		}
	}

	probes := []dht.Key{0, 101, 8999, 9000, 21000, 21001, 39999, 52000, 61001, 65535}
	type snap struct{ pred, succ, chain, hops, covers string }
	take := func(m overlay.Machine) snap {
		var s snap
		if p, ok := m.Predecessor(); ok {
			s.pred = fmt.Sprint(p.ID)
		}
		for _, r := range m.SuccessorList() {
			s.succ += fmt.Sprint(r.ID, ",")
		}
		for _, r := range m.(*koorde.Machine).DeBruijnList() {
			s.chain += fmt.Sprint(r.ID, ",")
		}
		for _, k := range probes {
			if h, ok := m.NextHop(k); ok {
				s.hops += fmt.Sprint(h.ID, ",")
			} else {
				s.hops += "-,"
			}
			s.covers += fmt.Sprint(m.Covers(k), ",")
		}
		return s
	}

	for i, msg := range trace {
		simM.Handle(msg)
		var liveSnap snap
		m := msg
		node.Do(func() {
			node.ring.Handle(m)
			liveSnap = take(node.ring)
		})
		if simSnap := take(simM); simSnap != liveSnap {
			t.Fatalf("divergence after message %d (%T):\n sim  %+v\n live %+v", i, msg, simSnap, liveSnap)
		}
	}

	// The maintenance counters the trace exercised must agree too.
	var liveStats metrics.Ring
	node.Do(func() { liveStats = node.ring.Stats() })
	if simStats := simM.Stats(); simStats != liveStats {
		t.Fatalf("stats diverged:\n sim  %+v\n live %+v", simStats, liveStats)
	}
	if liveStats.Machine != koorde.MachineName {
		t.Fatalf("stats carry machine %q, want %q", liveStats.Machine, koorde.MachineName)
	}
	if liveStats.StaleFindResps == 0 || liveStats.FindDrops == 0 || liveStats.FingerRepairs == 0 {
		t.Fatalf("trace failed to exercise stale answers, TTL drops and pointer repairs: %+v", liveStats)
	}
}
