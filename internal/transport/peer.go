package transport

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// peer is the outbound half of a connection to one remote address: a
// bounded queue of encoded frames drained by a dedicated writer goroutine
// that dials lazily and redials with jittered exponential backoff. Peers
// never share connections with the inbound side — a node accepts inbound
// connections read-only and dials outbound connections write-only, which
// avoids connection-identity handshakes entirely.
type peer struct {
	addr string
	out  chan []byte

	quit chan struct{}
	done chan struct{}

	// onDrop is invoked (from any goroutine) for every frame lost to a
	// full queue or to shutdown with frames still buffered.
	onDrop func()
}

const (
	dialTimeout  = 3 * time.Second
	writeTimeout = 5 * time.Second
	backoffBase  = 50 * time.Millisecond
	backoffMax   = 3 * time.Second
)

func newPeer(addr string, queueLen int, onDrop func()) *peer {
	p := &peer{
		addr:   addr,
		out:    make(chan []byte, queueLen),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		onDrop: onDrop,
	}
	go p.writeLoop()
	return p
}

// enqueue hands a frame to the writer, dropping it when the queue is full
// (a slow or dead peer must not stall the event loop).
func (p *peer) enqueue(frame []byte) {
	select {
	case p.out <- frame:
	default:
		p.onDrop()
	}
}

// close stops the writer. Queued frames not yet written are dropped.
func (p *peer) close() {
	close(p.quit)
	<-p.done
}

// backoff returns the jittered delay for the given consecutive-failure
// count: base*2^n truncated to the max, then uniformly jittered in
// [d/2, d) so a cohort of reconnecting peers does not thunder in phase.
func backoff(failures int) time.Duration {
	d := backoffBase << uint(min(failures, 10))
	if d > backoffMax {
		d = backoffMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// writeLoop dials on demand and drains the queue. Any write or dial error
// closes the connection; the next frame triggers a redial after backoff.
func (p *peer) writeLoop() {
	defer close(p.done)
	var conn net.Conn
	failures := 0
	defer func() {
		if conn != nil {
			conn.Close()
		}
		// Account frames abandoned in the queue at shutdown.
		for {
			select {
			case <-p.out:
				p.onDrop()
			default:
				return
			}
		}
	}()
	for {
		var frame []byte
		select {
		case <-p.quit:
			return
		case frame = <-p.out:
		}
		for {
			if conn == nil {
				c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
				if err != nil {
					failures++
					select {
					case <-p.quit:
						p.onDrop() // the frame in hand
						return
					case <-time.After(backoff(failures)):
						continue
					}
				}
				conn = c
				failures = 0
			}
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			if _, err := conn.Write(frame); err != nil {
				conn.Close()
				conn = nil
				failures++
				select {
				case <-p.quit:
					p.onDrop()
					return
				case <-time.After(backoff(failures)):
					continue
				}
			}
			break
		}
	}
}

// peerSet is the per-node connection manager. All access happens on the
// node's event loop except close, which runs at shutdown after the loop
// has stopped accepting work.
type peerSet struct {
	mu       sync.Mutex
	peers    map[string]*peer
	queueLen int
	onDrop   func()
	closed   bool
}

func newPeerSet(queueLen int, onDrop func()) *peerSet {
	return &peerSet{
		peers:    make(map[string]*peer),
		queueLen: queueLen,
		onDrop:   onDrop,
	}
}

// send enqueues a frame toward addr, creating the peer lazily.
func (ps *peerSet) send(addr string, frame []byte) {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		ps.onDrop()
		return
	}
	p := ps.peers[addr]
	if p == nil {
		p = newPeer(addr, ps.queueLen, ps.onDrop)
		ps.peers[addr] = p
	}
	ps.mu.Unlock()
	p.enqueue(frame)
}

// close stops every writer and rejects further sends.
func (ps *peerSet) close() {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	ps.closed = true
	peers := make([]*peer, 0, len(ps.peers))
	for _, p := range ps.peers {
		peers = append(peers, p)
	}
	ps.mu.Unlock()
	for _, p := range peers {
		p.close()
	}
}
