package transport

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// peer is the outbound half of a connection to one remote address: a
// bounded queue of encoded frames drained by a dedicated writer goroutine
// that dials lazily and redials with jittered exponential backoff. Peers
// never share connections with the inbound side — a node accepts inbound
// connections read-only and dials outbound connections write-only, which
// avoids connection-identity handshakes entirely.
//
// The writer coalesces: after blocking for the first frame of a burst it
// greedily drains whatever else is queued (up to maxWriteBatch) and
// flushes the whole batch with one vectored write (net.Buffers → writev),
// so a deep queue costs one syscall per burst instead of one per frame.
type peer struct {
	addr string
	out  chan *frameBuf

	quit chan struct{}
	done chan struct{}

	// onDrop is invoked (from any goroutine) for every frame lost to a
	// full queue or to shutdown with frames still buffered.
	onDrop func()

	// stats aggregates frames/flushes across the owning peerSet.
	stats *ioStats

	// rng drives backoff jitter. Each peer owns its source so a cohort of
	// reconnecting writers does not serialize on math/rand's global lock.
	rng *rand.Rand
}

// ioStats counts data-plane writer activity for a whole peerSet.
type ioStats struct {
	// frames is the number of frames fully written to sockets.
	frames atomic.Int64
	// flushes is the number of vectored write calls that carried them;
	// frames/flushes is the coalescing factor (≥ 1).
	flushes atomic.Int64
}

const (
	dialTimeout  = 3 * time.Second
	writeTimeout = 5 * time.Second
	backoffBase  = 50 * time.Millisecond
	backoffMax   = 3 * time.Second

	// maxWriteBatch bounds one vectored write, staying well under the
	// kernel's IOV_MAX (1024) so net.Buffers flushes in a single writev.
	maxWriteBatch = 64
)

func newPeer(addr string, queueLen int, onDrop func(), stats *ioStats) *peer {
	p := &peer{
		addr:   addr,
		out:    make(chan *frameBuf, queueLen),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		onDrop: onDrop,
		stats:  stats,
		rng:    rand.New(rand.NewSource(rand.Int63())),
	}
	go p.writeLoop()
	return p
}

// enqueue hands a frame to the writer, dropping it when the queue is full
// (a slow or dead peer must not stall the event loop).
func (p *peer) enqueue(f *frameBuf) {
	select {
	case p.out <- f:
	default:
		p.onDrop()
		f.recycle()
	}
}

// close stops the writer. Queued frames not yet written are dropped.
func (p *peer) close() {
	close(p.quit)
	<-p.done
}

// backoff returns the jittered delay for the given consecutive-failure
// count: base*2^n truncated to the max, then uniformly jittered in
// [d/2, d) so a cohort of reconnecting peers does not thunder in phase.
// Only the writer goroutine calls it, so the unsynchronized rng is safe.
func (p *peer) backoff(failures int) time.Duration {
	d := backoffBase << uint(min(failures, 10))
	if d > backoffMax {
		d = backoffMax
	}
	return d/2 + time.Duration(p.rng.Int63n(int64(d/2)))
}

// writeLoop dials on demand and drains the queue in batches. Any write or
// dial error closes the connection; the pending batch redials after
// backoff. A frame cut short by a dying connection is resent whole on the
// next one — the receiver discards the truncated copy with the dead
// connection, so frames never tear across connections.
func (p *peer) writeLoop() {
	defer close(p.done)
	var conn net.Conn
	failures := 0
	batch := make([]*frameBuf, 0, maxWriteBatch)
	bufs := make(net.Buffers, 0, maxWriteBatch)
	defer func() {
		if conn != nil {
			conn.Close()
		}
		// Account the batch in hand and frames abandoned in the queue at
		// shutdown.
		for _, f := range batch {
			p.onDrop()
			f.recycle()
		}
		for {
			select {
			case f := <-p.out:
				p.onDrop()
				f.recycle()
			default:
				return
			}
		}
	}()
	for {
		// Block for the first frame of a burst...
		select {
		case <-p.quit:
			return
		case f := <-p.out:
			batch = append(batch, f)
		}
		// ...then greedily take whatever else is already queued.
	drain:
		for len(batch) < maxWriteBatch {
			select {
			case f := <-p.out:
				batch = append(batch, f)
			default:
				break drain
			}
		}
		for len(batch) > 0 {
			if conn == nil {
				c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
				if err != nil {
					failures++
					select {
					case <-p.quit:
						return
					case <-time.After(p.backoff(failures)):
						continue
					}
				}
				conn = c
				failures = 0
			}
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			bufs = bufs[:0]
			for _, f := range batch {
				bufs = append(bufs, f.b)
			}
			n, err := bufs.WriteTo(conn)
			p.stats.flushes.Add(1)
			// Retire fully-written frames even on error; a partially
			// written one stays first in the batch for the next conn.
			written := 0
			for written < len(batch) && n >= int64(len(batch[written].b)) {
				n -= int64(len(batch[written].b))
				written++
			}
			if written > 0 {
				p.stats.frames.Add(int64(written))
				for _, f := range batch[:written] {
					f.recycle()
				}
				batch = append(batch[:0], batch[written:]...)
			}
			if err != nil {
				conn.Close()
				conn = nil
				failures++
				select {
				case <-p.quit:
					return
				case <-time.After(p.backoff(failures)):
				}
			}
		}
	}
}

// peerSet is the per-node connection manager. All access happens on the
// node's event loop except close, which runs at shutdown after the loop
// has stopped accepting work.
type peerSet struct {
	mu       sync.Mutex
	peers    map[string]*peer
	queueLen int
	onDrop   func()
	stats    ioStats
	closed   bool
}

func newPeerSet(queueLen int, onDrop func()) *peerSet {
	return &peerSet{
		peers:    make(map[string]*peer),
		queueLen: queueLen,
		onDrop:   onDrop,
	}
}

// send enqueues a frame toward addr, creating the peer lazily.
func (ps *peerSet) send(addr string, f *frameBuf) {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		ps.onDrop()
		f.recycle()
		return
	}
	p := ps.peers[addr]
	if p == nil {
		p = newPeer(addr, ps.queueLen, ps.onDrop, &ps.stats)
		ps.peers[addr] = p
	}
	ps.mu.Unlock()
	p.enqueue(f)
}

// close stops every writer and rejects further sends.
func (ps *peerSet) close() {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	ps.closed = true
	peers := make([]*peer, 0, len(ps.peers))
	for _, p := range ps.peers {
		peers = append(peers, p)
	}
	ps.mu.Unlock()
	for _, p := range peers {
		p.close()
	}
}
