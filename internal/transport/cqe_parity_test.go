package transport_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"streamdex/internal/chord"
	"streamdex/internal/core"
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Sim-vs-live parity for the three continuous-query operators, on the
// same timing-independent workload as the loopback similarity test:
//
//   - subscription: the box [-0.3, 0.3]^dims contains exactly the
//     out-of-band streams. Their feature is identically zero, so every
//     summary they publish is inside the box; in-band features rotate on
//     a circle of norm ≈ 1, and both bin-1 coordinates simultaneously
//     below 0.3 would need a norm under 0.43 — impossible. The matched
//     set is a function of the data alone.
//   - aggregate and top-k: posted over the whole routing coordinate
//     range, so every stream's sketches and publications are visible and
//     the stream *sets* (not the time-dependent counts) must agree.
type cqeSets struct {
	sub, agg, topk []string
}

func (s cqeSets) String() string {
	return fmt.Sprintf("sub=%v agg=%v topk=%v", s.sub, s.agg, s.topk)
}

func topkStreams(entries []cqe.StreamCount) []string {
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.StreamID)
	}
	sort.Strings(out)
	return out
}

func subBox(dims int) (summary.Feature, summary.Feature) {
	lo := make(summary.Feature, dims)
	hi := make(summary.Feature, dims)
	for d := range lo {
		lo[d], hi[d] = -0.3, 0.3
	}
	return lo, hi
}

// simCQESets runs the cluster workload on the simulator, posts the three
// operators at node 0, and returns their sorted stream sets.
func simCQESets(t *testing.T, cfg core.Config) cqeSets {
	t.Helper()
	eng := sim.NewEngine()
	net := chord.New(eng, chord.Config{
		Space:       cfg.Space,
		HopDelay:    50 * sim.Millisecond,
		SuccListLen: 4,
	})
	ids := nodeIDs(cfg.Space)
	sorted := append([]dht.Key(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	net.BuildStable(sorted, nil)
	mw, err := core.New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range clusterStreams() {
		if err := mw.DataCenter(ids[i%nNodes]).RegisterStream(st); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunFor(2 * sim.Second)

	lo, hi := subBox(cfg.FeatureDims)
	subID, err := mw.PostSubscription(ids[0], lo, hi, 60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	aggID, err := mw.PostAggregate(ids[0], -10, 10, 60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	topkID, err := mw.PostTopK(ids[0], nStreams, -10, 10, 60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * sim.Second)

	if mw.AggCount(aggID) == 0 {
		t.Fatal("simulator aggregate folded zero points")
	}
	sets := cqeSets{
		sub:  mw.SubscribedStreams(subID),
		agg:  mw.AggStreams(aggID),
		topk: topkStreams(mw.TopK(topkID)),
	}
	sort.Strings(sets.sub)
	sort.Strings(sets.agg)
	return sets
}

func TestOperatorParitySimVsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock integration test")
	}
	cfg := clusterConfig()
	cfg.Sketches = true

	want := cqeSets{sub: wantMatched(), agg: allStreams(), topk: allStreams()}
	simSet := simCQESets(t, cfg)
	if simSet.String() != want.String() {
		t.Fatalf("simulator operators saw %v, want %v (workload invariant broken)", simSet, want)
	}

	nodes, mws := liveCluster(t, cfg)
	ids := nodeIDs(cfg.Space)
	for i, st := range clusterStreams() {
		idx := i % nNodes
		var err error
		nodes[idx].Do(func() {
			err = mws[idx].DataCenter(ids[idx]).RegisterStream(st)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Windows fill in WindowSize*Period = 320 ms; leave margin.
	time.Sleep(1 * time.Second)

	lo, hi := subBox(cfg.FeatureDims)
	var subID, aggID, topkID query.ID
	var err error
	nodes[0].Do(func() {
		if subID, err = mws[0].PostSubscription(ids[0], lo, hi, 60*sim.Second); err != nil {
			return
		}
		if aggID, err = mws[0].PostAggregate(ids[0], -10, 10, 60*sim.Second); err != nil {
			return
		}
		topkID, err = mws[0].PostTopK(ids[0], nStreams, -10, 10, 60*sim.Second)
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	var got cqeSets
	var aggCount uint64
	for {
		nodes[0].Do(func() {
			got = cqeSets{
				sub:  mws[0].SubscribedStreams(subID),
				agg:  mws[0].AggStreams(aggID),
				topk: topkStreams(mws[0].TopK(topkID)),
			}
			aggCount = mws[0].AggCount(aggID)
		})
		sort.Strings(got.sub)
		sort.Strings(got.agg)
		if got.String() == simSet.String() && aggCount > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live cluster saw %v (agg count %d), simulator saw %v", got, aggCount, simSet)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func allStreams() []string {
	out := make([]string, nStreams)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i)
	}
	return out
}
