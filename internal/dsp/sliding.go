package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Mode selects the stream normalization applied before feature extraction
// (paper §III-B).
type Mode int

const (
	// ZNorm subtracts the window mean and scales to unit L2 norm
	// (paper Eq. 1) — the normalization used for correlation queries,
	// since the correlation of two streams reduces to the Euclidean
	// distance between their z-normalized series.
	ZNorm Mode = iota
	// UnitNorm scales the raw window to unit L2 norm (paper Eq. 2),
	// mapping it onto the unit hyper-sphere — used for subsequence
	// queries.
	UnitNorm
	// Raw applies no normalization; used for inner-product reconstruction
	// where actual magnitudes matter.
	Raw
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ZNorm:
		return "znorm"
	case UnitNorm:
		return "unitnorm"
	case Raw:
		return "raw"
	default:
		return "unknown"
	}
}

// DefaultRecomputeEvery bounds floating-point drift: after this many
// incremental slides the coefficients and moments are recomputed exactly
// from the window. The drift per slide is O(machine epsilon), so 4096
// slides stay far below any tolerance the index cares about (verified in
// the tests).
const DefaultRecomputeEvery = 4096

// SlidingDFT maintains the first k unitary DFT coefficients of a
// fixed-length sliding window in O(k) time per arriving point, using the
// paper's incremental update (Eq. 5):
//
//	X'_h = e^{+j 2 pi h / n} * (X_h + (x_new - x_old)/sqrt(n))
//
// It also tracks the window's running sum and sum of squares, from which
// the coefficients of the *normalized* window are derived in O(k) without
// touching the window again:
//
//   - z-normalization (Eq. 1) subtracts the mean and divides by the
//     centered norm; since the DFT of a constant vector vanishes for h >= 1,
//     Z_h = X_h / s for h >= 1 and Z_0 = 0.
//   - unit-normalization (Eq. 2) divides by the norm: U_h = X_h / ||x||.
//
// This is what makes per-item processing cost independent of the window
// length, the property the paper's computation model demands.
type SlidingDFT struct {
	n, k int

	buf   []float64
	head  int // index of the oldest element once full
	count int

	// Coefficient state is kept as separate real/imaginary float64 slices
	// (rather than []complex128) with matching precomputed twiddle tables,
	// so the per-point update compiles to plain fused float loops. The
	// arithmetic is exactly the expansion of the complex multiply, so
	// results are bitwise-identical to the complex128 formulation.
	re, im     []float64 // raw unitary coefficients 0..k-1
	twRe, twIm []float64 // e^{+j 2 pi h / n}

	sqrtN float64 // sqrt(n), the unitary scale divisor

	sum, sumsq float64

	slides         int
	recomputeEvery int

	scratch []float64 // reused linearized window for exact recomputes
}

// NewSlidingDFT creates a sliding transform over windows of length
// windowSize retaining k coefficients, 1 <= k <= windowSize.
func NewSlidingDFT(windowSize, k int) *SlidingDFT {
	if windowSize <= 0 {
		panic(fmt.Sprintf("dsp: window size %d", windowSize))
	}
	if k < 1 || k > windowSize {
		panic(fmt.Sprintf("dsp: k=%d outside [1,%d]", k, windowSize))
	}
	s := &SlidingDFT{
		n:              windowSize,
		k:              k,
		buf:            make([]float64, windowSize),
		re:             make([]float64, k),
		im:             make([]float64, k),
		twRe:           make([]float64, k),
		twIm:           make([]float64, k),
		sqrtN:          math.Sqrt(float64(windowSize)),
		recomputeEvery: DefaultRecomputeEvery,
	}
	for h := 0; h < k; h++ {
		tw := cmplx.Exp(complex(0, 2*math.Pi*float64(h)/float64(windowSize)))
		s.twRe[h] = real(tw)
		s.twIm[h] = imag(tw)
	}
	return s
}

// SetRecomputeEvery overrides the drift-control interval; v <= 0 disables
// periodic exact recomputation (used by tests that measure raw drift).
func (s *SlidingDFT) SetRecomputeEvery(v int) { s.recomputeEvery = v }

// N returns the window length.
func (s *SlidingDFT) N() int { return s.n }

// K returns the number of retained coefficients.
func (s *SlidingDFT) K() int { return s.k }

// Len returns how many points the window currently holds.
func (s *SlidingDFT) Len() int { return s.count }

// Full reports whether the window has filled; coefficients are undefined
// before that.
func (s *SlidingDFT) Full() bool { return s.count == s.n }

// Push appends a new point. While the window is filling it only
// accumulates; the first fill computes the coefficients exactly; afterwards
// each Push slides the window in O(k).
func (s *SlidingDFT) Push(x float64) {
	if s.count < s.n {
		s.fill(x)
		return
	}
	s.slide(x)
	if s.recomputeEvery > 0 && s.slides >= s.recomputeEvery {
		s.recompute()
	}
}

// PushBatch appends a block of points, amortizing the per-point
// bookkeeping (field loads, bounds checks, drift-control tests) across the
// block. It is exactly equivalent to calling Push for each element in
// order — including the timing of periodic exact recomputes — so results
// are bitwise-identical.
func (s *SlidingDFT) PushBatch(xs []float64) {
	// Filling phase, until the window is complete.
	for len(xs) > 0 && s.count < s.n {
		s.fill(xs[0])
		xs = xs[1:]
	}
	for len(xs) > 0 {
		// Process up to the next drift-control recompute in one fused
		// pass over the block.
		chunk := len(xs)
		if s.recomputeEvery > 0 {
			if room := s.recomputeEvery - s.slides; room < chunk {
				chunk = room
			}
		}
		buf, re, im, twRe, twIm := s.buf, s.re, s.im, s.twRe, s.twIm
		head, n, sqrtN := s.head, s.n, s.sqrtN
		sum, sumsq := s.sum, s.sumsq
		for _, x := range xs[:chunk] {
			old := buf[head]
			buf[head] = x
			head++
			if head == n {
				head = 0
			}
			sum += x - old
			sumsq += x*x - old*old
			d := (x - old) / sqrtN
			for h := range re {
				ar := re[h] + d
				ai := im[h]
				re[h] = ar*twRe[h] - ai*twIm[h]
				im[h] = ar*twIm[h] + ai*twRe[h]
			}
		}
		s.head = head
		s.sum, s.sumsq = sum, sumsq
		s.slides += chunk
		if s.recomputeEvery > 0 && s.slides >= s.recomputeEvery {
			s.recompute()
		}
		xs = xs[chunk:]
	}
}

// fill accumulates a point while the window is still filling; the first
// complete fill computes the coefficients exactly.
func (s *SlidingDFT) fill(x float64) {
	s.buf[s.count] = x
	s.count++
	s.sum += x
	s.sumsq += x * x
	if s.count == s.n {
		s.recompute()
	}
}

// slide advances the full window by one point in O(k): the incremental
// update of Eq. 5, expanded into real arithmetic.
func (s *SlidingDFT) slide(x float64) {
	old := s.buf[s.head]
	s.buf[s.head] = x
	s.head++
	if s.head == s.n {
		s.head = 0
	}
	s.sum += x - old
	s.sumsq += x*x - old*old
	d := (x - old) / s.sqrtN
	re, im, twRe, twIm := s.re, s.im, s.twRe, s.twIm
	for h := range re {
		ar := re[h] + d
		ai := im[h]
		re[h] = ar*twRe[h] - ai*twIm[h]
		im[h] = ar*twIm[h] + ai*twRe[h]
	}
	s.slides++
}

// recompute rebuilds coefficients and moments exactly from the buffer,
// using the Goertzel recurrence (one multiply per sample per coefficient).
// It reuses an internal scratch buffer, so steady-state pushes stay
// allocation-free.
func (s *SlidingDFT) recompute() {
	if s.scratch == nil {
		s.scratch = make([]float64, s.n)
	}
	w := s.scratch[:s.count]
	s.windowInto(w)
	for h := 0; h < s.k; h++ {
		c := Goertzel(w, h)
		s.re[h] = real(c)
		s.im[h] = imag(c)
	}
	s.sum, s.sumsq = 0, 0
	for _, v := range w {
		s.sum += v
		s.sumsq += v * v
	}
	s.slides = 0
}

// windowInto copies the current window contents oldest-first into dst,
// which must have length Len().
func (s *SlidingDFT) windowInto(dst []float64) {
	if s.count < s.n {
		copy(dst, s.buf[:s.count])
		return
	}
	m := copy(dst, s.buf[s.head:])
	copy(dst[m:], s.buf[:s.head])
}

// Window returns the current window contents oldest-first. The slice is a
// copy.
func (s *SlidingDFT) Window() []float64 {
	out := make([]float64, s.count)
	s.windowInto(out)
	return out
}

// Mean returns the window mean.
func (s *SlidingDFT) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Norm returns the window's L2 norm.
func (s *SlidingDFT) Norm() float64 {
	if s.sumsq < 0 {
		return 0
	}
	return math.Sqrt(s.sumsq)
}

// CenteredNorm returns sqrt(sum (x_i - mean)^2), the z-normalization
// denominator of Eq. 1.
func (s *SlidingDFT) CenteredNorm() float64 {
	c := s.sumsq - s.sum*s.sum/float64(s.n)
	if c < 0 {
		c = 0 // floating-point guard for near-constant windows
	}
	return math.Sqrt(c)
}

// Coeffs returns a copy of the first k raw unitary coefficients.
func (s *SlidingDFT) Coeffs() []complex128 {
	out := make([]complex128, s.k)
	for h := range out {
		out[h] = complex(s.re[h], s.im[h])
	}
	return out
}

// NormalizedCoeffs returns the first k coefficients of the window after the
// given normalization, derived in O(k) from the raw coefficients and the
// running moments. A degenerate window (zero norm) yields all-zero
// coefficients.
func (s *SlidingDFT) NormalizedCoeffs(mode Mode) []complex128 {
	out := make([]complex128, s.k)
	switch mode {
	case Raw:
		for h := range out {
			out[h] = complex(s.re[h], s.im[h])
		}
	case UnitNorm:
		norm := s.Norm()
		if norm == 0 {
			return out
		}
		inv := 1 / norm
		for h := 0; h < s.k; h++ {
			out[h] = complex(s.re[h]*inv, s.im[h]*inv)
		}
	case ZNorm:
		cn := s.CenteredNorm()
		if cn == 0 {
			return out
		}
		inv := 1 / cn
		// The DC coefficient of a mean-subtracted window is zero; the
		// others are unaffected by the shift.
		for h := 1; h < s.k; h++ {
			out[h] = complex(s.re[h]*inv, s.im[h]*inv)
		}
	default:
		panic("dsp: unknown normalization mode")
	}
	return out
}

// PartialDFT computes the first k unitary DFT coefficients of x directly in
// O(len(x) * k) — cheaper than a full FFT when k is a small constant, as in
// the index (k <= a handful).
func PartialDFT(x []float64, k int) []complex128 {
	n := len(x)
	out := make([]complex128, k)
	if n == 0 {
		return out
	}
	scale := 1 / math.Sqrt(float64(n))
	for h := 0; h < k; h++ {
		var re, im float64
		for i := 0; i < n; i++ {
			angle := -2 * math.Pi * float64(h) * float64(i) / float64(n)
			sin, cos := math.Sincos(angle)
			re += x[i] * cos
			im += x[i] * sin
		}
		out[h] = complex(re*scale, im*scale)
	}
	return out
}

// Normalize returns a normalized copy of x under the given mode (the batch
// analogue of NormalizedCoeffs, used by query-side feature extraction and
// ground-truth checks). A degenerate window returns all zeros.
func Normalize(x []float64, mode Mode) []float64 {
	out := make([]float64, len(x))
	switch mode {
	case Raw:
		copy(out, x)
	case UnitNorm:
		n := math.Sqrt(EnergyReal(x))
		if n == 0 {
			return out
		}
		for i, v := range x {
			out[i] = v / n
		}
	case ZNorm:
		if len(x) == 0 {
			return out
		}
		var sum float64
		for _, v := range x {
			sum += v
		}
		mean := sum / float64(len(x))
		var cn float64
		for _, v := range x {
			d := v - mean
			cn += d * d
		}
		cn = math.Sqrt(cn)
		if cn == 0 {
			return out
		}
		for i, v := range x {
			out[i] = (v - mean) / cn
		}
	default:
		panic("dsp: unknown normalization mode")
	}
	return out
}

// EuclideanDistance returns the L2 distance between two equal-length
// vectors.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dsp: distance between different lengths")
	}
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}
