package dsp

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the signal-processing hot paths. The headline
// numbers the paper's computation model depends on: a sliding-DFT push is
// O(k) and independent of the window length, while recomputing from
// scratch is O(N log N) or O(Nk).

func benchSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func BenchmarkSlidingDFTPush(b *testing.B) {
	for _, n := range []int{128, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			s := NewSlidingDFT(n, 3)
			for _, v := range benchSignal(n) {
				s.Push(v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Push(float64(i % 17))
			}
		})
	}
}

func BenchmarkSlidingDFTPushBatch(b *testing.B) {
	for _, n := range []int{128, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			s := NewSlidingDFT(n, 3)
			xs := benchSignal(n)
			s.PushBatch(xs)
			b.SetBytes(int64(8 * len(xs)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.PushBatch(xs)
			}
		})
	}
}

func BenchmarkSlidingDFTNormalizedCoeffs(b *testing.B) {
	s := NewSlidingDFT(4096, 3)
	for _, v := range benchSignal(4096) {
		s.Push(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.NormalizedCoeffs(ZNorm)
	}
}

func BenchmarkFFTRadix2(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			x := benchSignal(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = FFTReal(x)
			}
		})
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	x := benchSignal(1000) // non-power-of-two
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FFTReal(x)
	}
}

func BenchmarkPartialDFT(b *testing.B) {
	x := benchSignal(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PartialDFT(x, 3)
	}
}

func BenchmarkReconstruct(b *testing.B) {
	coeffs := FFTReal(benchSignal(4096))[:3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Reconstruct(coeffs, 4096)
	}
}

func sizeName(n int) string {
	switch n {
	case 128:
		return "n128"
	case 256:
		return "n256"
	case 1024:
		return "n1024"
	case 4096:
		return "n4096"
	default:
		return "n"
	}
}
