package dsp

import (
	"math"
)

// Goertzel evaluates a single DFT coefficient with the Goertzel recurrence
// — O(N) with one real multiply per sample, measurably cheaper than the
// naive inner product and much cheaper than a full FFT when only a handful
// of coefficients are needed, which is exactly the index's regime (k <= 3
// coefficients per window).
//
// The result matches the unitary convention used everywhere in this
// package: X_h = (1/sqrt(N)) * sum_i x_i e^{-j 2 pi h i / N}.
func Goertzel(x []float64, h int) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	if h < 0 || h >= n {
		panic("dsp: Goertzel bin out of range")
	}
	w := 2 * math.Pi * float64(h) / float64(n)
	cos, sin := math.Cos(w), math.Sin(w)
	coeff := 2 * cos
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Goertzel closing step: for DFT bins (w = 2 pi h / N) the e^{jwN}
	// phase factor is unity and the recurrence closes to exactly
	// sum_i x_i e^{-j w i} = (s1*cos(w) - s2) + j*s1*sin(w).
	re := s1*cos - s2
	im := s1 * sin
	scale := 1 / math.Sqrt(float64(n))
	return complex(re*scale, im*scale)
}

// GoertzelBins evaluates the first k coefficients via Goertzel — a drop-in
// replacement for PartialDFT used by the sliding transform's periodic
// exact recompute.
func GoertzelBins(x []float64, k int) []complex128 {
	out := make([]complex128, k)
	for h := 0; h < k && h < len(x); h++ {
		out[h] = Goertzel(x, h)
	}
	return out
}
