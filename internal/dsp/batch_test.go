package dsp

import (
	"math/rand"
	"testing"
)

// TestPushBatchBitwiseEqualsSequentialPush pins the batch-push contract:
// PushBatch(xs) must leave the sliding DFT in a state bitwise identical to
// calling Push for each element in order — including the fill→slide
// transition and periodic drift-control recomputes landing mid-batch.
// Figure reproductions prefill whole windows through this path, so "close
// enough" is not enough; determinism of the figure rows requires exact
// equality.
func TestPushBatchBitwiseEqualsSequentialPush(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, k := 32, 4
	xs := make([]float64, n+5000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	for _, every := range []int{0, 7, 64, 4096} {
		seq := NewSlidingDFT(n, k)
		seq.SetRecomputeEvery(every)
		bat := NewSlidingDFT(n, k)
		bat.SetRecomputeEvery(every)

		for _, v := range xs {
			seq.Push(v)
		}
		// Exercise uneven chunk sizes so batches straddle both the
		// fill/slide boundary and recompute boundaries.
		for i := 0; i < len(xs); {
			sz := 1 + (i*7+3)%97
			if i+sz > len(xs) {
				sz = len(xs) - i
			}
			bat.PushBatch(xs[i : i+sz])
			i += sz
		}

		sc, bc := seq.Coeffs(), bat.Coeffs()
		for h := range sc {
			if sc[h] != bc[h] {
				t.Fatalf("recomputeEvery=%d: coefficient %d differs: Push=%v PushBatch=%v", every, h, sc[h], bc[h])
			}
		}
		if seq.Mean() != bat.Mean() || seq.Norm() != bat.Norm() {
			t.Fatalf("recomputeEvery=%d: moments differ", every)
		}
		sw, bw := seq.Window(), bat.Window()
		for i := range sw {
			if sw[i] != bw[i] {
				t.Fatalf("recomputeEvery=%d: window differs at %d", every, i)
			}
		}
	}
}

// TestPushZeroAllocs guards the steady-state allocation contract of the
// incremental update: a slide touches only the preallocated re/im/twiddle
// slices, and even the periodic drift-control recompute reuses its scratch
// window.
func TestPushZeroAllocs(t *testing.T) {
	s := NewSlidingDFT(64, 4)
	s.SetRecomputeEvery(16) // force recomputes inside the measured runs
	for i := 0; i < 128; i++ {
		s.Push(float64(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.Push(float64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("Push allocated %.1f objects per run, want 0", allocs)
	}
}

// TestPushBatchZeroAllocs: the batch path shares the same preallocated state.
func TestPushBatchZeroAllocs(t *testing.T) {
	s := NewSlidingDFT(64, 4)
	xs := benchSignal(256)
	s.PushBatch(xs)
	allocs := testing.AllocsPerRun(100, func() {
		s.PushBatch(xs)
	})
	if allocs != 0 {
		t.Fatalf("PushBatch allocated %.1f objects per run, want 0", allocs)
	}
}
