package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlidingMatchesBatchAfterEverySlide(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n, k := 32, 5
	s := NewSlidingDFT(n, k)
	s.SetRecomputeEvery(0) // measure the pure incremental path
	var series []float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		series = append(series, v)
		s.Push(v)
	}
	if !s.Full() {
		t.Fatal("window should be full")
	}
	for step := 0; step < 200; step++ {
		v := rng.NormFloat64()
		series = append(series, v)
		s.Push(v)
		window := series[len(series)-n:]
		want := PartialDFT(window, k)
		if !complexClose(s.Coeffs(), want, 1e-9) {
			t.Fatalf("slide %d: incremental coefficients diverged", step)
		}
	}
}

func TestSlidingMomentsTrackWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 16
	s := NewSlidingDFT(n, 3)
	var series []float64
	for i := 0; i < 100; i++ {
		v := rng.Float64()*10 - 5
		series = append(series, v)
		s.Push(v)
		if i < n-1 {
			continue
		}
		window := series[len(series)-n:]
		var sum, sumsq float64
		for _, w := range window {
			sum += w
			sumsq += w * w
		}
		if math.Abs(s.Mean()-sum/float64(n)) > 1e-9 {
			t.Fatalf("mean diverged at %d", i)
		}
		if math.Abs(s.Norm()-math.Sqrt(sumsq)) > 1e-9 {
			t.Fatalf("norm diverged at %d", i)
		}
	}
}

func TestWindowReturnsOldestFirst(t *testing.T) {
	s := NewSlidingDFT(4, 2)
	for _, v := range []float64{1, 2, 3, 4, 5, 6} {
		s.Push(v)
	}
	got := s.Window()
	want := []float64{3, 4, 5, 6}
	if !realClose(got, want, 0) {
		t.Fatalf("Window() = %v, want %v", got, want)
	}
}

func TestWindowWhileFilling(t *testing.T) {
	s := NewSlidingDFT(4, 2)
	s.Push(1)
	s.Push(2)
	if s.Full() {
		t.Fatal("not full yet")
	}
	if got := s.Window(); !realClose(got, []float64{1, 2}, 0) {
		t.Fatalf("Window() = %v", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len() = %d", s.Len())
	}
}

func TestNormalizedCoeffsMatchBatchNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n, k := 24, 4
	for _, mode := range []Mode{ZNorm, UnitNorm, Raw} {
		s := NewSlidingDFT(n, k)
		var series []float64
		for i := 0; i < n+77; i++ {
			v := rng.NormFloat64()*3 + 1
			series = append(series, v)
			s.Push(v)
		}
		window := series[len(series)-n:]
		want := PartialDFT(Normalize(window, mode), k)
		got := s.NormalizedCoeffs(mode)
		if !complexClose(got, want, 1e-9) {
			t.Fatalf("mode %v: O(k) normalized coefficients != batch", mode)
		}
	}
}

func TestZNormDCCoefficientIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSlidingDFT(16, 3)
	for i := 0; i < 40; i++ {
		s.Push(rng.Float64() * 100)
	}
	z := s.NormalizedCoeffs(ZNorm)
	if cmplxAbs(z[0]) != 0 {
		t.Fatalf("z-normalized DC coefficient = %v, want exactly 0", z[0])
	}
}

func TestNormalizedCoeffsUnitEnergyBound(t *testing.T) {
	// A normalized window has unit energy, so by Parseval every
	// coefficient magnitude is <= 1 — the bound that makes Eq. 6 map
	// features into the ring (paper §IV-B).
	rng := rand.New(rand.NewSource(24))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSlidingDFT(16, 4)
		for i := 0; i < 16+int(seed%32+32); i++ {
			s.Push(r.NormFloat64() * 10)
		}
		for _, mode := range []Mode{ZNorm, UnitNorm} {
			for _, c := range s.NormalizedCoeffs(mode) {
				if cmplxAbs(c) > 1+1e-9 {
					return false
				}
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateConstantWindow(t *testing.T) {
	s := NewSlidingDFT(8, 3)
	for i := 0; i < 20; i++ {
		s.Push(5)
	}
	for _, mode := range []Mode{ZNorm, UnitNorm} {
		_ = mode
	}
	z := s.NormalizedCoeffs(ZNorm)
	for _, c := range z {
		if cmplxAbs(c) != 0 {
			t.Fatalf("constant window z-norm coefficients = %v, want zeros", z)
		}
	}
	u := s.NormalizedCoeffs(UnitNorm)
	if cmplxAbs(u[0]) == 0 {
		t.Fatal("constant non-zero window has non-degenerate unit normalization")
	}
}

func TestZeroWindowUnitNorm(t *testing.T) {
	s := NewSlidingDFT(8, 2)
	for i := 0; i < 8; i++ {
		s.Push(0)
	}
	for _, c := range s.NormalizedCoeffs(UnitNorm) {
		if cmplxAbs(c) != 0 {
			t.Fatal("all-zero window should normalize to zeros")
		}
	}
}

func TestDriftStaysBoundedWithRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n, k := 64, 4
	s := NewSlidingDFT(n, k)
	s.SetRecomputeEvery(1000)
	var series []float64
	for i := 0; i < n+100_000; i++ {
		v := rng.NormFloat64() * 100
		series = append(series, v)
		s.Push(v)
	}
	window := series[len(series)-n:]
	want := PartialDFT(window, k)
	if !complexClose(s.Coeffs(), want, 1e-6) {
		t.Fatal("coefficients drifted beyond tolerance despite periodic recompute")
	}
}

func TestLowerBoundingProperty(t *testing.T) {
	// Distance computed on the first k DFT coefficients lower-bounds the
	// true Euclidean distance between the normalized sequences
	// (paper Eq. 9) — the guarantee that similarity search over features
	// yields false positives but never false dismissals.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k := 32, 3
		x, y := make([]float64, n), make([]float64, n)
		x[0], y[0] = r.NormFloat64(), r.NormFloat64()
		for i := 1; i < n; i++ {
			x[i] = x[i-1] + r.NormFloat64()
			y[i] = y[i-1] + r.NormFloat64()
		}
		xn, yn := Normalize(x, ZNorm), Normalize(y, ZNorm)
		trueDist := EuclideanDistance(xn, yn)
		X, Y := PartialDFT(xn, k), PartialDFT(yn, k)
		var featDistSq float64
		for h := 0; h < k; h++ {
			d := X[h] - Y[h]
			featDistSq += real(d)*real(d) + imag(d)*imag(d)
		}
		return math.Sqrt(featDistSq) <= trueDist+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	x := randomSignal(rng, 40)
	for i := range x {
		x[i] = x[i]*7 + 3
	}
	z := Normalize(x, ZNorm)
	var sum float64
	for _, v := range z {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("z-normalized mean = %v, want 0", sum/float64(len(z)))
	}
	if math.Abs(EnergyReal(z)-1) > 1e-9 {
		t.Fatalf("z-normalized energy = %v, want 1", EnergyReal(z))
	}
	u := Normalize(x, UnitNorm)
	if math.Abs(EnergyReal(u)-1) > 1e-9 {
		t.Fatalf("unit-normalized energy = %v, want 1", EnergyReal(u))
	}
	raw := Normalize(x, Raw)
	if !realClose(raw, x, 0) {
		t.Fatal("Raw normalization must copy")
	}
}

func TestCorrelationReducesToDistance(t *testing.T) {
	// Paper §III-B: correlation of two sequences reduces to the Euclidean
	// distance of their z-normalized series: corr = 1 - d^2/2.
	rng := rand.New(rand.NewSource(27))
	n := 64
	x := randomSignal(rng, n)
	y := make([]float64, n)
	for i := range y {
		y[i] = 0.8*x[i] + 0.2*rng.NormFloat64()
	}
	xn, yn := Normalize(x, ZNorm), Normalize(y, ZNorm)
	var dot float64
	for i := range xn {
		dot += xn[i] * yn[i]
	}
	d := EuclideanDistance(xn, yn)
	if math.Abs((1-d*d/2)-dot) > 1e-9 {
		t.Fatalf("corr %v != 1 - d^2/2 = %v", dot, 1-d*d/2)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, c := range []struct{ n, k int }{{0, 1}, {8, 0}, {8, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSlidingDFT(%d,%d) did not panic", c.n, c.k)
				}
			}()
			NewSlidingDFT(c.n, c.k)
		}()
	}
}

func TestEuclideanDistanceMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EuclideanDistance([]float64{1}, []float64{1, 2})
}

func TestModeString(t *testing.T) {
	if ZNorm.String() != "znorm" || UnitNorm.String() != "unitnorm" || Raw.String() != "raw" || Mode(9).String() != "unknown" {
		t.Fatal("Mode.String mismatch")
	}
}
