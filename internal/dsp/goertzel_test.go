package dsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGoertzelMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{4, 7, 32, 100, 255} {
		x := randomSignal(rng, n)
		full := DFT(x)
		for h := 0; h < n && h < 8; h++ {
			got := Goertzel(x, h)
			if cmplxAbs(got-full[h]) > 1e-8 {
				t.Fatalf("n=%d h=%d: Goertzel %v != DFT %v", n, h, got, full[h])
			}
		}
	}
}

func TestGoertzelMatchesDFTQuick(t *testing.T) {
	f := func(seed int64, hRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 48
		x := randomSignal(rng, n)
		h := int(hRaw) % n
		return cmplxAbs(Goertzel(x, h)-DFT(x)[h]) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGoertzelBinsMatchPartialDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := randomSignal(rng, 128)
	got := GoertzelBins(x, 5)
	want := PartialDFT(x, 5)
	if !complexClose(got, want, 1e-8) {
		t.Fatal("GoertzelBins != PartialDFT")
	}
}

func TestGoertzelEdgeCases(t *testing.T) {
	if Goertzel(nil, 0) != 0 {
		t.Fatal("empty input should be zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bin should panic")
		}
	}()
	Goertzel([]float64{1, 2}, 2)
}

func BenchmarkGoertzelVsPartialDFT(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	x := randomSignal(rng, 4096)
	b.Run("goertzel-k3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = GoertzelBins(x, 3)
		}
	})
	b.Run("partialdft-k3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = PartialDFT(x, 3)
		}
	})
}
