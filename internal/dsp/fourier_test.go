package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func randomSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(real(a[i])-real(b[i])) > tol || math.Abs(imag(a[i])-imag(b[i])) > tol {
			return false
		}
	}
	return true
}

func realClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestDFTKnownValues(t *testing.T) {
	// DFT of a constant signal: all energy in the DC coefficient.
	x := []float64{2, 2, 2, 2}
	X := DFT(x)
	if math.Abs(real(X[0])-4) > eps || math.Abs(imag(X[0])) > eps {
		t.Fatalf("X[0] = %v, want 4 (= 2*sqrt(4))", X[0])
	}
	for h := 1; h < 4; h++ {
		if cmplxAbs(X[h]) > eps {
			t.Fatalf("X[%d] = %v, want 0", h, X[h])
		}
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestFFTMatchesDFTPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randomSignal(rng, n)
		if !complexClose(FFTReal(x), DFT(x), 1e-9) {
			t.Fatalf("FFT != DFT for n=%d", n)
		}
	}
}

func TestFFTMatchesDFTArbitraryLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 100, 129} {
		x := randomSignal(rng, n)
		if !complexClose(FFTReal(x), DFT(x), 1e-8) {
			t.Fatalf("Bluestein FFT != DFT for n=%d", n)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 16, 33, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		if !complexClose(back, x, 1e-8) {
			t.Fatalf("IFFT(FFT(x)) != x for n=%d", n)
		}
	}
}

func TestInverseDFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomSignal(rng, 32)
	if !realClose(InverseDFT(DFT(x)), x, 1e-9) {
		t.Fatal("InverseDFT(DFT(x)) != x")
	}
}

func TestParsevalProperty(t *testing.T) {
	// The unitary DFT preserves signal energy (paper: "DFT is an
	// orthogonal transformation; hence, it preserves the energy").
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%120 + 1
		_ = seed
		x := randomSignal(rng, n)
		return math.Abs(EnergyReal(x)-Energy(FFTReal(x))) < 1e-7*(1+EnergyReal(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 64
	x, y := randomSignal(rng, n), randomSignal(rng, n)
	sum := make([]float64, n)
	for i := range sum {
		sum[i] = 2*x[i] + 3*y[i]
	}
	X, Y, S := FFTReal(x), FFTReal(y), FFTReal(sum)
	comb := make([]complex128, n)
	for i := range comb {
		comb[i] = 2*X[i] + 3*Y[i]
	}
	if !complexClose(S, comb, 1e-9) {
		t.Fatal("DFT not linear")
	}
}

func TestConjugateSymmetryOfRealSignals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomSignal(rng, 50)
	X := FFTReal(x)
	for h := 1; h < 50; h++ {
		m := X[50-h]
		if math.Abs(real(X[h])-real(m)) > 1e-9 || math.Abs(imag(X[h])+imag(m)) > 1e-9 {
			t.Fatalf("X[%d] and X[%d] not conjugate", h, 50-h)
		}
	}
}

func TestReconstructExactWithAllCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{8, 9, 16, 31} {
		x := randomSignal(rng, n)
		X := FFTReal(x)
		got := Reconstruct(X[:n/2+1], n)
		if !realClose(got, x, 1e-8) {
			t.Fatalf("full reconstruction failed for n=%d", n)
		}
	}
}

func TestReconstructApproximationImprovesWithK(t *testing.T) {
	// A smooth (random-walk) signal concentrates energy in low
	// frequencies, so reconstruction error must fall as k grows — the
	// premise of the paper's feature extraction.
	rng := rand.New(rand.NewSource(9))
	n := 64
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = x[i-1] + rng.NormFloat64()
	}
	X := FFTReal(x)
	prevErr := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16} {
		rec := Reconstruct(X[:k], n)
		var errE float64
		for i := range x {
			d := x[i] - rec[i]
			errE += d * d
		}
		if errE > prevErr+1e-9 {
			t.Fatalf("reconstruction error grew from %.4f to %.4f at k=%d", prevErr, errE, k)
		}
		prevErr = errE
	}
	if prevErr > 0.2*EnergyReal(x) {
		t.Fatalf("16 of 64 coefficients retain too little energy: residual %.2f of %.2f", prevErr, EnergyReal(x))
	}
}

func TestReconstructRejectsTooManyCoeffs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Reconstruct(make([]complex128, 6), 8)
}

func TestPartialDFTMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randomSignal(rng, 100)
	full := DFT(x)
	part := PartialDFT(x, 7)
	if !complexClose(part, full[:7], 1e-9) {
		t.Fatal("PartialDFT disagrees with DFT")
	}
}

func TestEnergyHelpers(t *testing.T) {
	if Energy([]complex128{3 + 4i}) != 25 {
		t.Fatal("Energy(3+4i) != 25")
	}
	if EnergyReal([]float64{3, 4}) != 25 {
		t.Fatal("EnergyReal(3,4) != 25")
	}
}

func TestEmptyInputs(t *testing.T) {
	if len(DFT(nil)) != 0 || len(InverseDFT(nil)) != 0 {
		t.Fatal("empty DFT should be empty")
	}
	if len(FFT(nil)) != 0 {
		t.Fatal("empty FFT should be empty")
	}
	if Reconstruct(nil, 0) != nil {
		t.Fatal("empty reconstruction")
	}
}
