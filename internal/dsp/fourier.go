// Package dsp provides the signal-processing substrate of the middleware
// (paper §III-C): the discrete Fourier transform used to compute stream
// features, its fast O(N log N) variants, the O(1)-per-coefficient
// incremental update over sliding windows (paper Eq. 5), the stream
// normalizations of §III-B (Eq. 1 and 2), and approximate signal
// reconstruction from the retained coefficients (Eq. 7).
//
// The DFT convention is unitary — both directions carry a 1/sqrt(N)
// factor — so that the transform is orthogonal and preserves the energy of
// the signal exactly as the paper states (Parseval), which in turn gives
// the lower-bounding property the index relies on for correctness.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// DFT computes the unitary discrete Fourier transform of a real signal by
// the O(N^2) definition (paper Eq. 3). It is the reference implementation
// the fast paths are tested against and the fallback for tiny inputs.
func DFT(x []float64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	scale := 1 / math.Sqrt(float64(n))
	for h := 0; h < n; h++ {
		var sum complex128
		for i := 0; i < n; i++ {
			angle := -2 * math.Pi * float64(h) * float64(i) / float64(n)
			sum += complex(x[i], 0) * cmplx.Exp(complex(0, angle))
		}
		out[h] = sum * complex(scale, 0)
	}
	return out
}

// InverseDFT computes the unitary inverse by the O(N^2) definition
// (paper Eq. 4), returning the real part of the reconstruction.
func InverseDFT(X []complex128) []float64 {
	n := len(X)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	scale := 1 / math.Sqrt(float64(n))
	for i := 0; i < n; i++ {
		var sum complex128
		for h := 0; h < n; h++ {
			angle := 2 * math.Pi * float64(h) * float64(i) / float64(n)
			sum += X[h] * cmplx.Exp(complex(0, angle))
		}
		out[i] = real(sum) * scale
	}
	return out
}

// FFT computes the unitary DFT of a complex signal of arbitrary length:
// radix-2 Cooley-Tukey for powers of two, Bluestein's chirp-z algorithm
// otherwise — both O(N log N).
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	scale := complex(1/math.Sqrt(float64(len(x))), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// IFFT computes the unitary inverse FFT.
func IFFT(X []complex128) []complex128 {
	out := make([]complex128, len(X))
	copy(out, X)
	fftInPlace(out, true)
	scale := complex(1/math.Sqrt(float64(len(X))), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// FFTReal computes the unitary DFT of a real signal via FFT.
func FFTReal(x []float64) []complex128 {
	buf := make([]complex128, len(x))
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf, false)
	scale := complex(1/math.Sqrt(float64(len(x))), 0)
	for i := range buf {
		buf[i] *= scale
	}
	return buf
}

// fftInPlace runs an unnormalized transform (forward or inverse) in place,
// dispatching on the input length.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is the iterative Cooley-Tukey transform for power-of-two lengths,
// unnormalized.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.Len(uint(n-1)))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
}

// bluestein evaluates an arbitrary-length DFT as a convolution, which is
// computed with power-of-two FFTs (chirp-z transform), unnormalized.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to keep the
	// angle argument small and precise for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	inv := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * inv * chirp[k]
	}
}

// Energy returns the squared L2 norm of a complex vector. For a unitary
// transform Energy(DFT(x)) equals the energy of x (Parseval).
func Energy(v []complex128) float64 {
	var e float64
	for _, c := range v {
		e += real(c)*real(c) + imag(c)*imag(c)
	}
	return e
}

// EnergyReal returns the squared L2 norm of a real vector.
func EnergyReal(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Reconstruct approximates the original length-n real signal from its first
// k+1 unitary DFT coefficients X[0..k] (paper Eq. 7). Conjugate symmetry of
// real signals is exploited: each retained coefficient h >= 1 contributes
// together with its mirror X[n-h] = conj(X[h]), so the reconstruction is
// real and captures twice the energy a one-sided sum would.
func Reconstruct(coeffs []complex128, n int) []float64 {
	if n <= 0 {
		return nil
	}
	k := len(coeffs)
	if k > n/2+1 {
		panic(fmt.Sprintf("dsp: Reconstruct with %d coefficients for n=%d; symmetry would double-count", k, n))
	}
	out := make([]float64, n)
	scale := 1 / math.Sqrt(float64(n))
	for i := 0; i < n; i++ {
		sum := 0.0
		for h := 0; h < k; h++ {
			angle := 2 * math.Pi * float64(h) * float64(i) / float64(n)
			re := real(coeffs[h])*math.Cos(angle) - imag(coeffs[h])*math.Sin(angle)
			if h == 0 || (n%2 == 0 && h == n/2) {
				sum += re
			} else {
				sum += 2 * re // mirror coefficient contributes its conjugate
			}
		}
		out[i] = sum * scale
	}
	return out
}
