package cqe

import (
	"strings"
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// fakeHost records sends; enough Host surface for registry tests.
type fakeHost struct{ sent []dht.Key }

func (f *fakeHost) ID() dht.Key                              { return 1 }
func (f *fakeHost) Now() sim.Time                            { return 42 }
func (f *fakeHost) Covers(dht.Key) bool                      { return true }
func (f *fakeHost) Send(to dht.Key, msg *dht.Message)        { f.sent = append(f.sent, to) }
func (f *fakeHost) SendRange(lo, hi dht.Key, m *dht.Message) {}
func (f *fakeHost) ContinueRange(*dht.Message) int           { return 0 }
func (f *fakeHost) PostToLoop(fn func())                     { fn() }

type fakeOp struct {
	name       string
	kinds      []dht.Kind
	delivered  []dht.Kind
	data       bool // DeliverData return
	dataCalls  int
	mbrs       int
	ticks      int
	ringChange int
}

func (o *fakeOp) Name() string      { return o.name }
func (o *fakeOp) Kinds() []dht.Kind { return o.kinds }
func (o *fakeOp) Deliver(h Host, msg *dht.Message) {
	o.delivered = append(o.delivered, msg.Kind)
}
func (o *fakeOp) DeliverData(h Host, msg *dht.Message) bool {
	o.dataCalls++
	return o.data
}
func (o *fakeOp) OnMBR(h Host, b *summary.MBR) { o.mbrs++ }
func (o *fakeOp) Tick(h Host, now sim.Time)    { o.ticks++ }
func (o *fakeOp) OnRingChange(h Host)          { o.ringChange++ }

func TestEngineDispatchByKind(t *testing.T) {
	e := NewEngine()
	a := &fakeOp{name: "alpha", kinds: []dht.Kind{1, 2}}
	b := &fakeOp{name: "beta", kinds: []dht.Kind{3}, data: true}
	e.Register(a)
	e.Register(b)

	h := &fakeHost{}
	if !e.Deliver(h, &dht.Message{Kind: 2}) {
		t.Fatal("owned kind not dispatched")
	}
	if len(a.delivered) != 1 || a.delivered[0] != 2 {
		t.Fatalf("alpha deliveries: %v", a.delivered)
	}
	if e.Deliver(h, &dht.Message{Kind: 9}) {
		t.Fatal("unowned kind claimed")
	}
	if !e.DeliverData(h, &dht.Message{Kind: 3}) {
		t.Fatal("beta refused its data delivery")
	}
	if e.DeliverData(h, &dht.Message{Kind: 1}) {
		t.Fatal("alpha (loop-only) accepted a data delivery")
	}
	if op, ok := e.Operator(3); !ok || op != b {
		t.Fatal("Operator lookup failed")
	}
	if got := e.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names: %v", got)
	}
}

func TestEngineFanOut(t *testing.T) {
	e := NewEngine()
	a := &fakeOp{name: "alpha", kinds: []dht.Kind{1}}
	b := &fakeOp{name: "beta", kinds: []dht.Kind{2}}
	e.Register(a)
	e.Register(b)
	h := &fakeHost{}
	e.OnMBR(h, &summary.MBR{})
	e.Tick(h, 7)
	e.Tick(h, 8)
	e.OnRingChange(h)
	for _, op := range []*fakeOp{a, b} {
		if op.mbrs != 1 || op.ticks != 2 || op.ringChange != 1 {
			t.Fatalf("%s fan-out: mbrs=%d ticks=%d ring=%d", op.name, op.mbrs, op.ticks, op.ringChange)
		}
	}
}

func TestEngineDuplicateKindPanicsNamingBoth(t *testing.T) {
	e := NewEngine()
	e.Register(&fakeOp{name: "first", kinds: []dht.Kind{5}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate kind registration did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "first") || !strings.Contains(msg, "second") {
			t.Fatalf("panic %q does not name both operators", msg)
		}
	}()
	e.Register(&fakeOp{name: "second", kinds: []dht.Kind{5}})
}

func TestSketchFoldKeepsLatestPerStream(t *testing.T) {
	f := NewSketchFold()
	mk := func(n int) *summary.Sketch {
		s := summary.NewSketch(1000*sim.Second, 4, 4, 0, 100)
		for i := 0; i < n; i++ {
			s.Add(sim.Time(i+1)*sim.Second, 50)
		}
		return s
	}
	if !f.Absorb("s1", 1, mk(3)) {
		t.Fatal("first report rejected")
	}
	if f.Absorb("s1", 1, mk(10)) {
		t.Fatal("duplicate seq absorbed")
	}
	if !f.Absorb("s1", 2, mk(5)) {
		t.Fatal("newer seq rejected")
	}
	if !f.Absorb("s2", 1, mk(4)) {
		t.Fatal("second stream rejected")
	}
	if f.Absorb("s3", 1, nil) {
		t.Fatal("nil sketch absorbed")
	}
	now := 2000 * sim.Second // everything outside window
	_ = now
	at := 20 * sim.Second
	if got := f.Count(at); got != 9 {
		t.Fatalf("count %d, want 9 (5+4, small counts exact)", got)
	}
	if got := f.Streams(); len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("streams %v", got)
	}
	if _, ok := f.Quantile(at, 0.5); !ok {
		t.Fatal("quantile over congruent fold failed")
	}
}

func TestSketchFoldRejectsIncongruentMerge(t *testing.T) {
	f := NewSketchFold()
	a := summary.NewSketch(1000*sim.Second, 4, 4, 0, 100)
	b := summary.NewSketch(1000*sim.Second, 4, 8, 0, 100)
	a.Add(sim.Second, 1)
	b.Add(sim.Second, 1)
	f.Absorb("a", 1, a)
	f.Absorb("b", 1, b)
	if m := f.Merged(); m != nil {
		t.Fatal("incongruent fold merged")
	}
}

func TestTopKTableSumsLatestReports(t *testing.T) {
	tab := NewTopKTable()
	tab.Absorb(10, []StreamCount{{"a", 5}, {"b", 2}})
	tab.Absorb(20, []StreamCount{{"a", 1}, {"c", 4}})
	// Node 10 reports again: replaces, not adds.
	tab.Absorb(10, []StreamCount{{"a", 6}, {"b", 2}})
	top := tab.Top(2)
	if len(top) != 2 || top[0] != (StreamCount{"a", 7}) || top[1] != (StreamCount{"c", 4}) {
		t.Fatalf("top-2: %v", top)
	}
	if tab.Reporters() != 2 {
		t.Fatalf("reporters %d", tab.Reporters())
	}
	// Deterministic tie-break by stream id.
	tab2 := NewTopKTable()
	tab2.Absorb(1, []StreamCount{{"z", 3}, {"a", 3}, {"m", 3}})
	got := tab2.Top(3)
	if got[0].StreamID != "a" || got[1].StreamID != "m" || got[2].StreamID != "z" {
		t.Fatalf("tie-break order: %v", got)
	}
	if all := tab2.Top(0); len(all) != 3 {
		t.Fatalf("k=0 should return all: %v", all)
	}
}
