package cqe

import (
	"sort"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Folding state kept at querying nodes: covering nodes push partial results
// (per-stream sketches, per-node frequency tables) every push period, and
// the origin folds them into the client-facing answer. Both folds are
// idempotent under the at-least-once delivery the range replication
// produces — duplicate reports replace, never double-count.

// SketchFold merges per-stream sketch reports for one aggregate query. The
// MBR range replication stores every stream's sketch on several covering
// nodes, so the same stream arrives from multiple reporters; the fold keeps
// only the highest-sequence report per stream and merges across streams on
// demand, in sorted stream order so estimates are deterministic.
type SketchFold struct {
	streams map[string]*foldEntry
}

type foldEntry struct {
	seq    uint64
	sketch *summary.Sketch
}

// NewSketchFold returns an empty fold.
func NewSketchFold() *SketchFold {
	return &SketchFold{streams: make(map[string]*foldEntry)}
}

// Absorb folds one per-stream report in, keeping the latest sequence per
// stream. It reports whether the fold changed.
func (f *SketchFold) Absorb(stream string, seq uint64, sk *summary.Sketch) bool {
	if sk == nil || sk.Validate() != nil {
		return false
	}
	cur := f.streams[stream]
	if cur != nil && cur.seq >= seq {
		return false
	}
	f.streams[stream] = &foldEntry{seq: seq, sketch: sk}
	return true
}

// Streams lists the reported streams in sorted order.
func (f *SketchFold) Streams() []string {
	out := make([]string, 0, len(f.streams))
	for sid := range f.streams {
		out = append(out, sid)
	}
	sort.Strings(out)
	return out
}

// Count estimates the total number of in-window items across all reported
// streams at time now.
func (f *SketchFold) Count(now sim.Time) uint64 {
	var total uint64
	for _, sid := range f.Streams() {
		total += f.streams[sid].sketch.Count(now)
	}
	return total
}

// Merged returns the merge of all reported sketches (nil when empty or
// when reports are not shape-congruent). Merge order is sorted stream
// order, so the approximate result is deterministic.
func (f *SketchFold) Merged() *summary.Sketch {
	var acc *summary.Sketch
	for _, sid := range f.Streams() {
		sk := f.streams[sid].sketch
		if acc == nil {
			acc = sk.Clone()
			continue
		}
		if err := acc.Merge(sk); err != nil {
			return nil
		}
	}
	return acc
}

// Quantile estimates the phi-quantile of the merged in-window value
// distribution at time now (ok=false when nothing merged).
func (f *SketchFold) Quantile(now sim.Time, phi float64) (float64, bool) {
	m := f.Merged()
	if m == nil {
		return 0, false
	}
	return m.Quantile(now, phi), true
}

// StreamCount is one entry of a frequency table: how often a stream
// published into the monitored range.
type StreamCount struct {
	StreamID string
	Count    uint64
}

// TopKTable folds per-node frequency reports for one top-k monitor. Every
// reporting node periodically replaces its own table (counts are cumulative
// at the reporter), and the global ranking sums the latest table of each
// node — counting is arranged so exactly one covering node counts each
// publication, making the sum duplicate-free.
type TopKTable struct {
	nodes map[dht.Key]map[string]uint64
}

// NewTopKTable returns an empty table.
func NewTopKTable() *TopKTable {
	return &TopKTable{nodes: make(map[dht.Key]map[string]uint64)}
}

// Absorb replaces the reporting node's frequency table.
func (t *TopKTable) Absorb(node dht.Key, counts []StreamCount) {
	m := make(map[string]uint64, len(counts))
	for _, c := range counts {
		m[c.StreamID] = c.Count
	}
	t.nodes[node] = m
}

// Reporters returns how many nodes have reported.
func (t *TopKTable) Reporters() int { return len(t.nodes) }

// Top returns the k highest-frequency streams, counts summed across the
// latest report of every node, ordered by descending count with ties broken
// by ascending stream id (deterministic under map iteration).
func (t *TopKTable) Top(k int) []StreamCount {
	sum := make(map[string]uint64)
	for _, m := range t.nodes {
		for sid, c := range m {
			sum[sid] += c
		}
	}
	out := make([]StreamCount, 0, len(sum))
	for sid, c := range sum {
		out = append(out, StreamCount{StreamID: sid, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].StreamID < out[j].StreamID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
