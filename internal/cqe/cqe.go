// Package cqe is the continuous-query engine: a registry of operator
// implementations the middleware's message dispatch, periodic maintenance
// and churn handling fan out through. Every query shape the index serves —
// the paper's similarity and inner-product paths as much as the windowed
// aggregates, standing subscriptions and top-k monitors layered on later —
// is one Operator: it owns a set of message kinds, decodes and encodes its
// payloads through the codec-v2 tags registered for those kinds, matches
// against store snapshots (on the worker pool where the kind allows it),
// and folds partial results at the querying node.
//
// The engine itself is substrate-agnostic: operators talk to their node
// through the Host interface, so the same operator code runs on the
// virtual-time simulator and the live TCP transport.
package cqe

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Host is the node-side environment an operator runs in: identity, clock,
// ring coverage, and message transmission. The middleware's per-node
// DataCenter implements it.
type Host interface {
	// ID returns the node's overlay identifier.
	ID() dht.Key
	// Now returns the current time on the substrate's clock.
	Now() sim.Time
	// Covers reports whether this node currently covers the key.
	Covers(key dht.Key) bool
	// Send routes a message to the node covering the key. The message is
	// size-stamped before transmission.
	Send(to dht.Key, msg *dht.Message)
	// SendRange disseminates a message over every node covering a key in
	// [lo, hi] using the configured range-multicast mode.
	SendRange(lo, hi dht.Key, msg *dht.Message)
	// ContinueRange keeps a received range multicast going and returns the
	// number of continuation legs sent.
	ContinueRange(msg *dht.Message) int
	// PostToLoop hands control-plane work discovered on a worker back to
	// the node's serialized loop; it runs the function inline when the
	// node has no concurrent data plane.
	PostToLoop(fn func())
}

// Operator is one continuous-query implementation plugged into the engine.
//
// Lifecycle: the engine routes every delivered message of the operator's
// kinds to Deliver (substrate loop) or DeliverData (worker pool; the
// operator opts in per message by returning true, anything refused is
// re-posted to the loop as Deliver). OnMBR runs for every summary entering
// the local store — on workers under the live transport, so implementations
// must be internally synchronized and cheap when idle. Tick runs once per
// push period on the loop for sweeping soft state, pushing partial results
// toward the querying node, and refreshing standing registrations.
// OnRingChange fires on the loop when the node's covering arc moved
// (predecessor or successor changed) so standing state can be re-homed
// immediately instead of waiting out a push period.
type Operator interface {
	// Name identifies the operator in diagnostics and registration
	// conflicts.
	Name() string
	// Kinds lists the message kinds the operator owns.
	Kinds() []dht.Kind
	// Deliver handles one message of an owned kind on the loop.
	Deliver(h Host, msg *dht.Message)
	// DeliverData optionally absorbs a message on a data-plane worker;
	// returning false sends it to Deliver on the loop instead.
	DeliverData(h Host, msg *dht.Message) bool
	// OnMBR observes a summary entering the local store.
	OnMBR(h Host, b *summary.MBR)
	// Tick runs the operator's periodic maintenance.
	Tick(h Host, now sim.Time)
	// OnRingChange reacts to a change of the node's ring neighborhood.
	OnRingChange(h Host)
}

// Engine is the operator registry of one node: message kinds map to
// exactly one operator, and periodic/churn upcalls fan out to all of them
// in registration order.
type Engine struct {
	ops    []Operator
	byKind map[dht.Kind]Operator
}

// NewEngine returns an empty registry.
func NewEngine() *Engine {
	return &Engine{byKind: make(map[dht.Kind]Operator)}
}

// Register adds an operator. Registering a kind twice is a wiring bug and
// panics naming both operators.
func (e *Engine) Register(op Operator) {
	for _, k := range op.Kinds() {
		if prev, ok := e.byKind[k]; ok {
			panic(fmt.Sprintf("cqe: kind %d registered by both %q and %q", k, prev.Name(), op.Name()))
		}
		e.byKind[k] = op
	}
	e.ops = append(e.ops, op)
}

// Operator returns the operator owning a kind, if any.
func (e *Engine) Operator(k dht.Kind) (Operator, bool) {
	op, ok := e.byKind[k]
	return op, ok
}

// Names lists the registered operators in registration order.
func (e *Engine) Names() []string {
	out := make([]string, len(e.ops))
	for i, op := range e.ops {
		out[i] = op.Name()
	}
	return out
}

// Deliver dispatches a loop delivery to the owning operator, reporting
// whether one was registered for the kind.
func (e *Engine) Deliver(h Host, msg *dht.Message) bool {
	op, ok := e.byKind[msg.Kind]
	if !ok {
		return false
	}
	op.Deliver(h, msg)
	return true
}

// DeliverData dispatches a worker delivery; false means the substrate must
// re-post the message to the loop (unowned kind or operator refusal).
func (e *Engine) DeliverData(h Host, msg *dht.Message) bool {
	op, ok := e.byKind[msg.Kind]
	if !ok {
		return false
	}
	return op.DeliverData(h, msg)
}

// OnMBR fans a newly stored summary out to every operator.
func (e *Engine) OnMBR(h Host, b *summary.MBR) {
	for _, op := range e.ops {
		op.OnMBR(h, b)
	}
}

// Tick runs every operator's periodic maintenance in registration order.
func (e *Engine) Tick(h Host, now sim.Time) {
	for _, op := range e.ops {
		op.Tick(h, now)
	}
}

// OnRingChange notifies every operator of a ring-neighborhood change.
func (e *Engine) OnRingChange(h Host) {
	for _, op := range e.ops {
		op.OnRingChange(h)
	}
}
