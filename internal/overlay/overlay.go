// Package overlay defines the substrate-neutral control-plane contract:
// the routing Machine interface every DHT protocol machine implements, the
// immutable View snapshot that data-plane workers route on without locks,
// and a registry keyed by machine name so simulators and live nodes can
// construct any registered substrate from a -substrate flag.
//
// The paper's middleware claims independence from the underlying
// content-based routing layer (§II-B); this package is that claim made
// structural. internal/chord/protocol registers the Chord machine,
// internal/koorde registers the de Bruijn machine, and neither the
// simulated substrate (internal/chord.Network) nor the live socket
// adapter (internal/transport.Node) knows which one it is driving.
package overlay

import (
	"fmt"
	"sort"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/sim"
)

// KindRing tags control-plane maintenance traffic of every routing machine
// (Chord and Koorde alike) so observers can separate ring upkeep from the
// data plane the evaluation measures.
const KindRing dht.Kind = 200

// Ref names a node: its ring identifier plus the transport address needed
// to reach it. The simulator leaves Addr empty (identifiers are addresses
// there); the live transport carries "host:port".
type Ref struct {
	ID   dht.Key
	Addr string
}

// Config carries the substrate-independent protocol parameters. Machines
// apply their own defaults for zero values (see each implementation).
type Config struct {
	// Space is the identifier universe.
	Space dht.Space
	// SuccListLen is the successor-list length for failure tolerance.
	SuccListLen int
	// StabilizeEvery is the period of the stabilize/notify task; zero
	// disables periodic maintenance.
	StabilizeEvery sim.Time
	// FixFingersEvery is the period of the long-link repair task (finger
	// repair on Chord, de Bruijn pointer repair on Koorde).
	FixFingersEvery sim.Time
	// JoinRetryEvery bounds how often an un-acknowledged join is retried.
	JoinRetryEvery sim.Time
	// MissThreshold is how many consecutive unanswered probes declare a
	// neighbor dead.
	MissThreshold int
	// FindTTL bounds lookup forwarding.
	FindTTL int
}

// View is an immutable snapshot of a machine's routing state, published
// atomically by the machine on its clock goroutine and read lock-free by
// data-plane workers. All methods are pure reads of the snapshot.
type View interface {
	// Joined reports whether the node is part of a ring.
	Joined() bool
	// Owner returns the node this view belongs to.
	Owner() Ref
	// Successor returns the first successor, if any.
	Successor() (Ref, bool)
	// Predecessor returns the predecessor, if known.
	Predecessor() (Ref, bool)
	// SuccRefs returns the successor list (shared slice: do not mutate).
	SuccRefs() []Ref
	// Covers reports whether the snapshot owner is responsible for key.
	Covers(key dht.Key) bool
	// NextHop returns the forwarding target for key.
	NextHop(key dht.Key) (Ref, bool)
	// ClosestPreceding returns the routing entry closest to but before
	// key — the greedy step shared by every ring-ordered substrate.
	ClosestPreceding(key dht.Key) (Ref, bool)
}

// Machine is one node's routing protocol state machine. Implementations
// are pure and message-driven: all mutation happens on the owning clock
// goroutine via Handle / Tick / the maintenance tickers, and concurrent
// readers use View.
type Machine interface {
	// Name returns the registered substrate name ("chord", "koorde").
	Name() string
	// Self returns the node's own reference.
	Self() Ref
	// Joined reports whether the node is part of a ring.
	Joined() bool
	// Stats returns a snapshot of the maintenance counters.
	Stats() metrics.Ring

	// Create starts a fresh one-node ring.
	Create()
	// Join starts the join protocol toward the bootstrap node; onJoined
	// (optional) fires once with the discovered successor.
	Join(bootstrap Ref, onJoined func(succ Ref))
	// AbandonJoin cancels an unfinished join.
	AbandonJoin()
	// StartMaintenance launches the periodic stabilize and repair tasks.
	StartMaintenance()
	// Tick runs one stabilize round and one long-link repair synchronously
	// (deterministic harnesses that do not want tickers).
	Tick()
	// Stop cancels maintenance and marks the machine stopped.
	Stop()

	// InstallRing force-feeds a perfect warm start: predecessor, successor
	// list and — when non-nil — the machine's long-distance links (fingers
	// on Chord, de Bruijn pointers on Koorde).
	InstallRing(pred *Ref, succList []Ref, longlinks []Ref)
	// AdoptPredecessor, ClearPredecessor and AdoptSuccessors splice ring
	// state during graceful leaves.
	AdoptPredecessor(p Ref)
	ClearPredecessor()
	AdoptSuccessors(list []Ref)

	// SetAliveFilter installs a liveness oracle consulted by routing (not
	// by the maintenance protocol, which must discover failures itself).
	SetAliveFilter(alive func(dht.Key) bool)
	// SetNeighborWatch installs a callback fired on the clock goroutine
	// whenever the predecessor or first successor changes.
	SetNeighborWatch(fn func())
	// SetPhases staggers the first firing of the maintenance tickers.
	SetPhases(stabilize, repair sim.Time)

	// Handle processes one inbound control-plane message.
	Handle(msg any)
	// FindSuccessor starts a lookup for key; onResp fires with the owner.
	FindSuccessor(key dht.Key, onResp func(succ Ref))

	// Routing accessors (clock-goroutine only; workers use View).
	Successor() (Ref, bool)
	LiveSuccessor() (Ref, bool)
	Predecessor() (Ref, bool)
	LivePredecessor() (Ref, bool)
	SuccessorList() []Ref
	// LonglinkCount reports how many long-distance links are installed.
	LonglinkCount() int
	// EachRoutingEntry visits every routing entry (long links, then
	// successors) — the fan-out set of tree-mode range multicast.
	EachRoutingEntry(fn func(Ref))
	Covers(key dht.Key) bool
	NextHop(key dht.Key) (Ref, bool)
	ClosestPreceding(key dht.Key) (Ref, bool)
	// View returns the latest published snapshot (lock-free, any
	// goroutine).
	View() View
}

// ArcSplitter is optionally implemented by machines whose routing state
// cannot subdivide a distant arc (Koorde's de Bruijn chain is a single
// contiguous window near k·self, unlike Chord's exponentially spaced
// fingers). SplitHeads proposes the low keys of sub-arcs a tree-mode
// range multicast should route independent legs toward, so the fan-out
// depth stays logarithmic; a nil result means the machine's plain
// routing-entry delegation is already shallow enough.
type ArcSplitter interface {
	// SplitHeads partitions the arc [lo, hi] into sub-arcs and returns
	// their low keys in clockwise order, heads[0] == lo. It returns nil
	// (never a single head) when splitting would not help.
	SplitHeads(lo, hi dht.Key) []dht.Key
}

// DigitRouter is optionally implemented by machines with a stateful
// routed walk (Koorde's digit injection): one hop of a walk toward
// target whose state — the imaginary address img and the number of key
// digits left, dht.SplitShiftNone before anchoring — travels in the
// message. Substrates fall back to the greedy NextHop step when the
// machine lacks the interface or returns ok == false.
type DigitRouter interface {
	// DigitHop advances the walk one hop: inject digits while the
	// imaginary address sits on this node's arc, re-anchor when the own
	// arc aligns strictly closer, and pick the forwarding node.
	DigitHop(target, img dht.Key, shift uint8) (next Ref, nimg dht.Key, nshift uint8, ok bool)
}

// Factory constructs machines of one substrate family.
type Factory struct {
	// Name is the registry key ("chord", "koorde").
	Name string
	// New builds a machine. send transmits one control message to a peer;
	// it must be safe to call from the clock goroutine.
	New func(cfg Config, self Ref, clk clock.Clock, send func(to Ref, msg any)) Machine
	// Longlinks computes the machine's perfect long-distance links for a
	// warm start, given the sorted live ring (the oracle). The result
	// feeds InstallRing. Nil means the machine repairs its links itself.
	Longlinks func(cfg Config, ring []dht.Key, self dht.Key) []Ref
}

var registry = map[string]Factory{}

// Register adds a machine family; called from the implementing package's
// init. Duplicate or empty names panic — they are programming errors.
func Register(f Factory) {
	if f.Name == "" {
		panic("overlay: Register with empty name")
	}
	if f.New == nil {
		panic(fmt.Sprintf("overlay: Register(%q) without constructor", f.Name))
	}
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("overlay: duplicate machine %q", f.Name))
	}
	registry[f.Name] = f
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	f, ok := registry[name]
	return f, ok
}

// Names returns the registered machine names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SuccessorOnRing returns the first identifier in the sorted ring at or
// clockwise after key — the membership oracle shared by warm-start
// long-link construction on every substrate.
func SuccessorOnRing(space dht.Space, ring []dht.Key, key dht.Key) (dht.Key, bool) {
	if len(ring) == 0 {
		return 0, false
	}
	key = space.Wrap(key)
	i := sort.Search(len(ring), func(i int) bool { return ring[i] >= key })
	if i == len(ring) {
		i = 0
	}
	return ring[i], true
}
