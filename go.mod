module streamdex

go 1.22
