package streamdex

import (
	"fmt"
	"time"

	"streamdex/internal/chord"
	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/metrics"
	"streamdex/internal/pastry"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

// NodeID identifies a data center on the identifier ring.
type NodeID = dht.Key

// QueryID identifies a posted continuous query.
type QueryID = query.ID

// Match is one reported similarity candidate.
type Match = query.Match

// IPValue is one periodic inner-product result.
type IPValue = query.IPValue

// Generator produces successive stream values (see GeneratorFunc for the
// functional form).
type Generator = stream.Generator

// GeneratorFunc adapts a plain function to a Generator.
type GeneratorFunc = stream.GeneratorFunc

// Normalization selects how stream windows are normalized before feature
// extraction.
type Normalization int

// Normalization modes.
const (
	// Correlation z-normalizes windows (zero mean, unit norm): similarity
	// then corresponds to linear correlation — the right mode for "find
	// streams that move together".
	Correlation Normalization = iota
	// Pattern scales windows to the unit hyper-sphere without centering —
	// the right mode for subsequence/pattern matching.
	Pattern
)

// ClusterOptions configures a cluster. The zero value of every field picks
// the paper's evaluation default.
type ClusterOptions struct {
	// Nodes is the number of data centers (default 16).
	Nodes int
	// WindowSize is the sliding window length (default 4096).
	WindowSize int
	// FeatureDims is the feature-space dimensionality (default 3).
	FeatureDims int
	// BatchFactor is the MBR batching factor beta (default 25).
	BatchFactor int
	// Normalization selects Correlation (default) or Pattern matching.
	Normalization Normalization
	// HopDelay is the simulated per-overlay-hop latency (default 50 ms).
	HopDelay time.Duration
	// SummaryLifespan is how long stored summaries stay queryable
	// (default 5 s).
	SummaryLifespan time.Duration
	// PushPeriod is the cadence of periodic pushes (default 2 s).
	PushPeriod time.Duration
	// Bidirectional enables middle-node bidirectional range multicast.
	Bidirectional bool
	// TreeMulticast enables finger-tree range dissemination (logarithmic
	// propagation delay; chord substrate only benefits, others fall back
	// to sequential). Mutually exclusive with Bidirectional.
	TreeMulticast bool
	// Seed drives all randomness (default 1).
	Seed int64
	// Churn enables the ring-maintenance protocol so nodes can be failed
	// and the overlay self-repairs (slightly more simulation work).
	Churn bool
	// Substrate selects the routing layer: "chord" (default, with full
	// membership dynamics) or "pastry" (static prefix-routing overlay).
	// The middleware behaves identically on both.
	Substrate string
}

// Cluster is a deployment of the distributed stream index over a simulated
// Chord overlay — the public face of the library. All methods must be
// called from one goroutine; time only advances inside Run.
type Cluster struct {
	eng *sim.Engine
	net dht.Substrate
	// chordNet is non-nil when the substrate is Chord, enabling FailNode.
	chordNet *chord.Network
	mw       *core.Middleware
	ids      []dht.Key
}

// NewCluster builds a stable overlay of opts.Nodes data centers with the
// middleware attached.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 16
	}
	if opts.Nodes < 2 {
		return nil, fmt.Errorf("streamdex: need at least 2 nodes, got %d", opts.Nodes)
	}
	cfg := core.DefaultConfig()
	if opts.WindowSize > 0 {
		cfg.WindowSize = opts.WindowSize
	}
	if opts.FeatureDims > 0 {
		cfg.FeatureDims = opts.FeatureDims
	}
	if opts.BatchFactor > 0 {
		cfg.Beta = opts.BatchFactor
	}
	if opts.Normalization == Pattern {
		cfg.Norm = dsp.UnitNorm
	}
	if opts.SummaryLifespan > 0 {
		cfg.MBRLifespan = fromDuration(opts.SummaryLifespan)
	}
	if opts.PushPeriod > 0 {
		cfg.PushPeriod = fromDuration(opts.PushPeriod)
	}
	if opts.Bidirectional && opts.TreeMulticast {
		return nil, fmt.Errorf("streamdex: Bidirectional and TreeMulticast are mutually exclusive")
	}
	if opts.Bidirectional {
		cfg.RangeMode = dht.RangeBidirectional
	}
	if opts.TreeMulticast {
		cfg.RangeMode = dht.RangeTree
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	hop := 50 * sim.Millisecond
	if opts.HopDelay > 0 {
		hop = fromDuration(opts.HopDelay)
	}
	eng := sim.NewEngine()
	ids := chord.SortKeys(chord.UniformIDs(cfg.Space, opts.Nodes))
	var net dht.Substrate
	var chordNet *chord.Network
	switch opts.Substrate {
	case "", "chord":
		ccfg := chord.Config{Space: cfg.Space, HopDelay: hop, SuccListLen: 8}
		if opts.Churn {
			ccfg.StabilizeEvery = 500 * sim.Millisecond
			ccfg.FixFingersEvery = 250 * sim.Millisecond
		}
		chordNet = chord.New(eng, ccfg)
		chordNet.BuildStable(ids, nil)
		net = chordNet
	case "pastry":
		if opts.Churn {
			return nil, fmt.Errorf("streamdex: churn requires the chord substrate")
		}
		pn := pastry.New(eng, pastry.Config{Space: cfg.Space, HopDelay: hop, LeafSize: 16})
		pn.BuildStable(ids, nil)
		net = pn
	default:
		return nil, fmt.Errorf("streamdex: unknown substrate %q", opts.Substrate)
	}
	mw, err := core.New(net, cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{eng: eng, net: net, chordNet: chordNet, mw: mw, ids: ids}, nil
}

func fromDuration(d time.Duration) sim.Time {
	return sim.Time(d / time.Microsecond)
}

// Nodes returns the identifiers of all live data centers in ring order.
func (c *Cluster) Nodes() []NodeID { return c.net.NodeIDs() }

// Run advances virtual time by d, executing all stream, routing and query
// activity that falls within it.
func (c *Cluster) Run(d time.Duration) { c.eng.RunFor(fromDuration(d)) }

// Now returns the current virtual time since cluster creation.
func (c *Cluster) Now() time.Duration {
	return time.Duration(c.eng.Now()) * time.Microsecond
}

// AddStream registers a stream sourced at the given node: every period one
// value is drawn from gen, summarized incrementally, and indexed across
// the cluster. Prefill seeds the window with history so the stream is
// queryable immediately.
func (c *Cluster) AddStream(at NodeID, id string, gen Generator, period time.Duration) error {
	return c.addStream(at, id, gen, period, false)
}

// AddStreamPrefilled is AddStream with the window primed from gen at
// registration (the stream existed before the deployment).
func (c *Cluster) AddStreamPrefilled(at NodeID, id string, gen Generator, period time.Duration) error {
	return c.addStream(at, id, gen, period, true)
}

func (c *Cluster) addStream(at NodeID, id string, gen Generator, period time.Duration, prefill bool) error {
	dc := c.mw.DataCenter(at)
	if dc == nil {
		return fmt.Errorf("streamdex: unknown node %d", at)
	}
	return dc.RegisterStream(stream.Stream{
		ID:      id,
		Gen:     gen,
		Period:  fromDuration(period),
		Prefill: prefill,
	})
}

// SimilarityQuery poses a continuous similarity query at the origin node:
// pattern must hold exactly WindowSize values; every stream whose summary
// stays within radius of the pattern's is reported during the lifespan.
func (c *Cluster) SimilarityQuery(origin NodeID, pattern []float64, radius float64, lifespan time.Duration) (QueryID, error) {
	return c.mw.PostSimilaritySeries(origin, pattern, radius, fromDuration(lifespan))
}

// SimilarityQueryToStream poses a similarity query whose pattern is the
// current window of a locally registered stream — "find everything that
// currently looks like my stream".
func (c *Cluster) SimilarityQueryToStream(origin NodeID, streamID string, radius float64, lifespan time.Duration) (QueryID, error) {
	dc := c.mw.DataCenter(origin)
	if dc == nil {
		return 0, fmt.Errorf("streamdex: unknown node %d", origin)
	}
	f := dc.StreamFeature(streamID)
	if f == nil {
		return 0, fmt.Errorf("streamdex: stream %q not ready at node %d", streamID, origin)
	}
	return c.mw.PostSimilarity(origin, f, radius, fromDuration(lifespan))
}

// InnerProductQuery subscribes to the weighted inner product of a stream's
// window: index selects window positions (0 = oldest value), weights the
// coefficients. Values are pushed periodically during the lifespan.
func (c *Cluster) InnerProductQuery(origin NodeID, streamID string, index []int, weights []float64, lifespan time.Duration) (QueryID, error) {
	return c.mw.PostInnerProduct(origin, streamID, index, weights, fromDuration(lifespan))
}

// AverageQuery subscribes to the mean of the most recent n window values
// of a stream — the paper's "average closing price for the last month".
func (c *Cluster) AverageQuery(origin NodeID, streamID string, n int, lifespan time.Duration) (QueryID, error) {
	w := c.mw.Config().WindowSize
	q := query.Average(streamID, w, n, fromDuration(lifespan))
	return c.mw.PostInnerProduct(origin, streamID, q.Index, q.Weights, fromDuration(lifespan))
}

// Matches returns the deduplicated similarity candidates reported so far.
func (c *Cluster) Matches(id QueryID) []Match { return c.mw.SimilarityMatches(id) }

// MatchedStreams returns the distinct stream ids reported for a
// similarity query.
func (c *Cluster) MatchedStreams(id QueryID) []string { return c.mw.MatchedStreams(id) }

// Values returns the inner-product values received so far.
func (c *Cluster) Values(id QueryID) []IPValue { return c.mw.InnerProductValues(id) }

// OnSimilarity installs a callback invoked at every periodic response
// delivery with the newly reported matches.
func (c *Cluster) OnSimilarity(fn func(QueryID, []Match)) { c.mw.OnSimilarity = fn }

// OnInnerProduct installs a callback invoked at every periodic value push.
func (c *Cluster) OnInnerProduct(fn func(QueryID, IPValue)) { c.mw.OnInnerProduct = fn }

// FailNode crashes a data center abruptly. With ClusterOptions.Churn the
// overlay detects the failure and self-repairs; stored summaries are soft
// state and regenerate from live streams. It returns an error on the
// static pastry substrate, which models a fixed deployment.
func (c *Cluster) FailNode(id NodeID) error {
	if c.chordNet == nil {
		return fmt.Errorf("streamdex: node failure requires the chord substrate")
	}
	c.chordNet.Fail(id)
	return nil
}

// CorrelationQuery poses a similarity query expressed as a minimum
// correlation threshold — "find all streams whose windows correlate with
// the pattern at least minCorr" (§III-B.2). The threshold is converted to
// the equivalent feature radius; the cluster must use Correlation
// normalization.
func (c *Cluster) CorrelationQuery(origin NodeID, pattern []float64, minCorr float64, lifespan time.Duration) (QueryID, error) {
	if c.mw.Config().Norm != dsp.ZNorm {
		return 0, fmt.Errorf("streamdex: correlation queries require Correlation normalization")
	}
	if minCorr <= -1 || minCorr > 1 {
		return 0, fmt.Errorf("streamdex: correlation threshold %v outside (-1, 1]", minCorr)
	}
	return c.SimilarityQuery(origin, pattern, query.RadiusForCorrelation(minCorr), lifespan)
}

// Stats summarizes the cluster's traffic since creation (or the last
// ResetStats).
type Stats struct {
	// MessagesPerNodePerSecond is the mean network load per data center.
	MessagesPerNodePerSecond float64
	// Events counts input events: MBR summaries published, queries
	// posted, responses pushed.
	MBRs, Queries, Responses int64
	// DroppedMessages counts routing losses (non-zero only under churn).
	DroppedMessages int64
}

// Stats returns current traffic statistics.
func (c *Cluster) Stats() Stats {
	rep := c.mw.Collector().Snapshot(c.eng.Now(), c.net.NodeIDs())
	return Stats{
		MessagesPerNodePerSecond: rep.TotalLoad,
		MBRs:                     rep.Events[metrics.EventMBR],
		Queries:                  rep.Events[metrics.EventQuery],
		Responses:                rep.Events[metrics.EventResponse],
		DroppedMessages:          c.net.Dropped(),
	}
}

// ResetStats zeroes the traffic counters (e.g. after warm-up).
func (c *Cluster) ResetStats() { c.mw.Collector().Reset(c.eng.Now()) }

// WindowSize returns the configured sliding-window length, the required
// pattern length for SimilarityQuery.
func (c *Cluster) WindowSize() int { return c.mw.Config().WindowSize }
