package streamdex

import (
	"math"
	"testing"
	"time"

	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

// smallOpts keeps facade tests fast: short windows fill in seconds.
func smallOpts() ClusterOptions {
	return ClusterOptions{
		Nodes:       12,
		WindowSize:  32,
		BatchFactor: 5,
		PushPeriod:  time.Second,
		Seed:        3,
	}
}

func TestNewClusterDefaults(t *testing.T) {
	c, err := NewCluster(ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 16 {
		t.Fatalf("default nodes = %d", len(c.Nodes()))
	}
	if c.WindowSize() != 4096 {
		t.Fatalf("default window = %d", c.WindowSize())
	}
}

func TestNewClusterRejectsTiny(t *testing.T) {
	if _, err := NewCluster(ClusterOptions{Nodes: 1}); err == nil {
		t.Fatal("1-node cluster accepted")
	}
}

func TestEndToEndSimilarity(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	// Two identical streams planted at different nodes.
	for i, node := range []NodeID{nodes[0], nodes[7]} {
		name := []string{"a", "b"}[i]
		gen := stream.DefaultRandomWalk(sim.NewRand(99))
		if err := c.AddStreamPrefilled(node, "twin-"+name, gen, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(10 * time.Second)

	qid, err := c.SimilarityQueryToStream(nodes[0], "twin-a", 0.15, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(15 * time.Second)
	found := map[string]bool{}
	for _, sid := range c.MatchedStreams(qid) {
		found[sid] = true
	}
	if !found["twin-b"] {
		t.Fatalf("planted twin not found; matched %v", c.MatchedStreams(qid))
	}
}

func TestEndToEndSimilarityWithRawPattern(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	gen := stream.NewSine(nil, 2, 16, 10, 0)
	if err := c.AddStreamPrefilled(nodes[2], "wave", gen, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.Run(8 * time.Second)
	// Query with an identical sine pattern, generated independently.
	pat := make([]float64, c.WindowSize())
	pgen := stream.NewSine(nil, 2, 16, 10, 0)
	for i := range pat {
		pat[i] = pgen.Next()
	}
	qid, err := c.SimilarityQuery(nodes[9], pat, 0.2, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	found := false
	for _, sid := range c.MatchedStreams(qid) {
		if sid == "wave" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sine stream not matched by its own pattern; got %v", c.MatchedStreams(qid))
	}
}

func TestEndToEndAverageQuery(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	gen := stream.DefaultRandomWalk(sim.NewRand(5))
	if err := c.AddStreamPrefilled(nodes[4], "prices", gen, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)
	qid, err := c.AverageQuery(nodes[8], "prices", 8, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(8 * time.Second)
	vals := c.Values(qid)
	if len(vals) < 2 {
		t.Fatalf("got %d values, want several periodic pushes", len(vals))
	}
	// Random walk around 500: the average must be in a plausible band.
	v := vals[len(vals)-1].Value
	if math.IsNaN(v) || v < 0 || v > 1000 {
		t.Fatalf("implausible average %v", v)
	}
}

func TestCallbacks(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	gen := stream.DefaultRandomWalk(sim.NewRand(5))
	if err := c.AddStreamPrefilled(nodes[0], "s", gen, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)
	simCalls, ipCalls := 0, 0
	c.OnSimilarity(func(QueryID, []Match) { simCalls++ })
	c.OnInnerProduct(func(QueryID, IPValue) { ipCalls++ })
	if _, err := c.SimilarityQueryToStream(nodes[0], "s", 0.3, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AverageQuery(nodes[3], "s", 4, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Run(8 * time.Second)
	if simCalls == 0 || ipCalls == 0 {
		t.Fatalf("callbacks: sim=%d ip=%d", simCalls, ipCalls)
	}
}

func TestStatsAndReset(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	gen := stream.DefaultRandomWalk(sim.NewRand(5))
	if err := c.AddStreamPrefilled(nodes[0], "s", gen, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	s := c.Stats()
	if s.MBRs == 0 || s.MessagesPerNodePerSecond <= 0 {
		t.Fatalf("stats empty: %+v", s)
	}
	c.ResetStats()
	s2 := c.Stats()
	if s2.MBRs != 0 {
		t.Fatalf("reset did not clear events: %+v", s2)
	}
}

func TestChurnSurvivesFailure(t *testing.T) {
	opts := smallOpts()
	opts.Churn = true
	opts.Nodes = 14
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	gen := stream.DefaultRandomWalk(sim.NewRand(7))
	if err := c.AddStreamPrefilled(nodes[0], "s", gen, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)
	c.FailNode(nodes[6])
	c.FailNode(nodes[10])
	c.Run(15 * time.Second) // heal
	qid, err := c.SimilarityQueryToStream(nodes[0], "s", 0.5, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(12 * time.Second)
	if len(c.MatchedStreams(qid)) == 0 {
		t.Fatal("no matches after failures")
	}
	if len(c.Nodes()) != 12 {
		t.Fatalf("live nodes = %d, want 12", len(c.Nodes()))
	}
}

func TestPastrySubstrateEndToEnd(t *testing.T) {
	opts := smallOpts()
	opts.Substrate = "pastry"
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	for i, node := range []NodeID{nodes[0], nodes[7]} {
		name := []string{"a", "b"}[i]
		gen := stream.DefaultRandomWalk(sim.NewRand(99))
		if err := c.AddStreamPrefilled(node, "twin-"+name, gen, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(10 * time.Second)
	qid, err := c.SimilarityQueryToStream(nodes[0], "twin-a", 0.15, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(15 * time.Second)
	found := map[string]bool{}
	for _, sid := range c.MatchedStreams(qid) {
		found[sid] = true
	}
	if !found["twin-b"] {
		t.Fatalf("planted twin not found on pastry; matched %v", c.MatchedStreams(qid))
	}
	// Failure injection is a chord feature.
	if err := c.FailNode(nodes[1]); err == nil {
		t.Fatal("FailNode on pastry should error")
	}
}

func TestTreeMulticastEndToEnd(t *testing.T) {
	opts := smallOpts()
	opts.TreeMulticast = true
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	for i, node := range []NodeID{nodes[0], nodes[6]} {
		name := []string{"a", "b"}[i]
		gen := stream.DefaultRandomWalk(sim.NewRand(42))
		if err := c.AddStreamPrefilled(node, "twin-"+name, gen, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(10 * time.Second)
	qid, err := c.SimilarityQueryToStream(nodes[0], "twin-a", 0.2, 25*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(15 * time.Second)
	found := map[string]bool{}
	for _, sid := range c.MatchedStreams(qid) {
		found[sid] = true
	}
	if !found["twin-b"] {
		t.Fatalf("planted twin not found under tree multicast: %v", c.MatchedStreams(qid))
	}
	// Mutual exclusion check.
	bad := smallOpts()
	bad.TreeMulticast = true
	bad.Bidirectional = true
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("Bidirectional+TreeMulticast accepted")
	}
}

func TestSubstrateValidation(t *testing.T) {
	opts := smallOpts()
	opts.Substrate = "bogus"
	if _, err := NewCluster(opts); err == nil {
		t.Fatal("bogus substrate accepted")
	}
	opts.Substrate = "pastry"
	opts.Churn = true
	if _, err := NewCluster(opts); err == nil {
		t.Fatal("churn on pastry accepted")
	}
}

func TestCorrelationQuery(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	for i, node := range []NodeID{nodes[0], nodes[5]} {
		name := []string{"a", "b"}[i]
		gen := stream.DefaultRandomWalk(sim.NewRand(31))
		if err := c.AddStreamPrefilled(node, "tw-"+name, gen, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(8 * time.Second)
	window := c.mw.DataCenter(nodes[0]).StreamWindow("tw-a")
	qid, err := c.CorrelationQuery(nodes[3], window, 0.99, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(12 * time.Second)
	found := map[string]bool{}
	for _, sid := range c.MatchedStreams(qid) {
		found[sid] = true
	}
	if !found["tw-b"] {
		t.Fatalf("perfectly correlated twin not found: %v", c.MatchedStreams(qid))
	}
	// Every match's correlation bound must respect the threshold's radius.
	for _, m := range c.Matches(qid) {
		if m.CorrelationBound() < 0.99-1e-9 {
			t.Fatalf("match %v has correlation bound %.4f below threshold", m.StreamID, m.CorrelationBound())
		}
	}
	// Validation.
	if _, err := c.CorrelationQuery(nodes[3], window, 1.5, time.Second); err == nil {
		t.Fatal("correlation > 1 accepted")
	}
	pat := smallOpts()
	pat.Normalization = Pattern
	pc, err := NewCluster(pat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CorrelationQuery(pc.Nodes()[0], make([]float64, pc.WindowSize()), 0.9, time.Second); err == nil {
		t.Fatal("correlation query accepted under Pattern normalization")
	}
}

func TestVirtualClock(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1500 * time.Millisecond)
	if c.Now() != 1500*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestUnknownNodeErrors(t *testing.T) {
	c, err := NewCluster(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	bogus := NodeID(1)
	for _, n := range c.Nodes() {
		if n == bogus {
			t.Skip("collision with real node id")
		}
	}
	if err := c.AddStream(bogus, "s", GeneratorFunc(func() float64 { return 0 }), time.Second); err == nil {
		t.Fatal("unknown node accepted for AddStream")
	}
	if _, err := c.SimilarityQueryToStream(bogus, "s", 0.1, time.Second); err == nil {
		t.Fatal("unknown node accepted for query")
	}
}
