// Command adidas-sim runs one configured simulation of the distributed
// stream-indexing middleware and prints its traffic report — the
// interactive face of the prototype, useful for exploring configurations
// beyond the canned experiments.
//
// Usage:
//
//	adidas-sim -nodes 200 -measure 100 -radius 0.1
//	adidas-sim -nodes 100 -beta 25 -range-mode bidi -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 100, "number of data centers")
		seed      = flag.Int64("seed", 1, "root random seed")
		warmup    = flag.Int("warmup", 40, "warm-up, seconds of virtual time")
		measure   = flag.Int("measure", 100, "measurement interval, seconds of virtual time")
		radius    = flag.Float64("radius", 0.1, "similarity query radius")
		beta      = flag.Int("beta", 25, "MBR batching factor")
		window    = flag.Int("window", 4096, "sliding window size")
		rangeMode = flag.String("range-mode", "seq", "range multicast: seq, bidi or tree")
		substrate = flag.String("substrate", "chord", "routing substrate: a registered ring machine (chord, koorde) or pastry")
		vnodes    = flag.Int("vnodes", 0, "virtual ring positions per node (0/1 = one)")
		replicas  = flag.Int("replicas", 0, "covering-range replication factor (0/1 = off)")
		skew      = flag.Float64("skew", 0, "Zipf exponent for query targeting (0 = uniform)")
		verbose   = flag.Bool("v", false, "print the per-node load distribution")
	)
	flag.Parse()

	// Validate every flag up front so a bad invocation fails with a clear
	// message instead of surfacing as a panic or a half-built workload.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "adidas-sim: "+format+"\n", args...)
		os.Exit(1)
	}
	if *nodes < 1 {
		fail("-nodes must be at least 1, got %d", *nodes)
	}
	if *warmup < 0 {
		fail("-warmup must be non-negative, got %d", *warmup)
	}
	if *measure < 0 {
		fail("-measure must be non-negative, got %d", *measure)
	}
	if *beta < 1 {
		fail("-beta must be positive, got %d", *beta)
	}
	if *window < 2 {
		fail("-window must be at least 2, got %d", *window)
	}
	switch *substrate {
	case "pastry":
	default:
		if _, ok := overlay.Lookup(*substrate); !ok {
			fail("unknown substrate %q (registered machines: %s; also: pastry)",
				*substrate, strings.Join(overlay.Names(), ", "))
		}
	}
	if *vnodes < 0 {
		fail("-vnodes must be non-negative, got %d", *vnodes)
	}
	if *replicas < 0 {
		fail("-replicas must be non-negative, got %d", *replicas)
	}
	if *skew < 0 {
		fail("-skew must be non-negative, got %g", *skew)
	}

	cfg := workload.DefaultConfig(*nodes)
	cfg.Seed = *seed
	cfg.Warmup = sim.Time(*warmup) * sim.Second
	cfg.Measure = sim.Time(*measure) * sim.Second
	cfg.Radius = *radius
	cfg.Core.Beta = *beta
	cfg.Core.WindowSize = *window
	cfg.Substrate = *substrate
	cfg.VNodes = *vnodes
	cfg.Core.Replicas = *replicas
	cfg.Skew = *skew
	switch *rangeMode {
	case "seq":
		cfg.Core.RangeMode = dht.RangeSequential
	case "bidi":
		cfg.Core.RangeMode = dht.RangeBidirectional
	case "tree":
		cfg.Core.RangeMode = dht.RangeTree
	default:
		fail("unknown range mode %q (want seq, bidi or tree)", *rangeMode)
	}

	r, err := workload.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adidas-sim: %v\n", err)
		os.Exit(1)
	}
	rep := r.Execute()

	fmt.Printf("simulation: %d nodes, %v measured (after %v warm-up), seed %d\n",
		cfg.Nodes, cfg.Measure, cfg.Warmup, cfg.Seed)
	fmt.Printf("input events: %d MBRs, %d queries, %d responses\n",
		rep.Events[metrics.EventMBR], rep.Events[metrics.EventQuery], rep.Events[metrics.EventResponse])
	fmt.Printf("virtual events executed: %d; dropped messages: %d\n\n",
		r.Eng.Executed(), r.Net.Dropped())

	fmt.Println("average load per node (messages/second):")
	for cat := metrics.Category(0); cat < metrics.NumCategories; cat++ {
		if rep.LoadByCategory[cat] == 0 {
			continue
		}
		fmt.Printf("  %-18s %8.3f\n", cat.String(), rep.LoadByCategory[cat])
	}
	fmt.Printf("  %-18s %8.3f\n\n", "total", rep.TotalLoad)

	fmt.Println("hops per delivered message (mean / max):")
	for h := metrics.HopClass(0); h < metrics.NumHopClasses; h++ {
		if rep.HopCount[h] == 0 {
			continue
		}
		fmt.Printf("  %-18s %6.2f / %d  (%d messages)\n", h.String(), rep.HopMean[h], rep.HopMax[h], rep.HopCount[h])
	}

	qs := rep.LoadQuantiles(0.5, 0.9, 0.99, 1)
	fmt.Printf("\nload distribution: p50=%.2f p90=%.2f p99=%.2f max=%.2f msgs/s\n", qs[0], qs[1], qs[2], qs[3])
	fmt.Printf("bandwidth: %.0f bytes/node/s (serialized message sizes)\n", rep.BandwidthPerNode)

	if *verbose {
		fmt.Println("\nper-node load (messages/second):")
		type nl struct {
			id   dht.Key
			load float64
		}
		var all []nl
		for id, l := range rep.NodeLoad {
			all = append(all, nl{id, l})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].load > all[j].load })
		for _, e := range all {
			fmt.Printf("  node %10d  %8.3f\n", e.id, e.load)
		}
	}
}
