package main

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"streamdex/internal/chord"
	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/transport"
)

// newSimSession builds an apiSession over a simulated 4-node overlay with
// one random-walk stream per node. No transport node is involved: the
// do-func runs inline (the test goroutine is the serialization domain),
// which is exactly the decoupling apiSession exists to provide.
func newSimSession(t *testing.T) (*apiSession, *sim.Engine) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Space = dht.NewSpace(16)
	cfg.WindowSize = 16
	cfg.Coeffs = 3
	cfg.FeatureDims = 3
	cfg.Beta = 2
	cfg.MBRLifespan = 60 * sim.Second
	cfg.PushPeriod = 500 * sim.Millisecond
	cfg.Sketches = true
	eng := sim.NewEngine()
	net := chord.New(eng, chord.Config{Space: cfg.Space, HopDelay: 50 * sim.Millisecond, SuccListLen: 4})
	ids := chord.SortKeys(chord.UniformIDs(cfg.Space, 4))
	net.BuildStable(ids, nil)
	mw, err := core.New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := sim.NewRand(cfg.Seed)
	for i, id := range ids {
		st := stream.Stream{
			ID:     fmt.Sprintf("s%d", i),
			Gen:    stream.DefaultRandomWalk(root.Fork(fmt.Sprintf("walk-%d", i))),
			Period: 100 * sim.Millisecond,
		}
		if err := mw.DataCenter(id).RegisterStream(st); err != nil {
			t.Fatal(err)
		}
	}
	return &apiSession{mw: mw, self: ids[0], do: func(fn func()) { fn() }}, eng
}

// runCmd feeds one command line through the session and collects the
// replies it would have written to the connection.
func runCmd(s *apiSession, line string) (replies []string, quit bool) {
	quit = s.handle(func(format string, args ...any) {
		replies = append(replies, fmt.Sprintf(format, args...))
	}, strings.Fields(line))
	return replies, quit
}

// okID extracts the id from an "OK <id>" reply.
func okID(t *testing.T, replies []string) string {
	t.Helper()
	if len(replies) != 1 || !strings.HasPrefix(replies[0], "OK ") {
		t.Fatalf("want single OK reply, got %q", replies)
	}
	id := strings.TrimPrefix(replies[0], "OK ")
	if _, err := strconv.ParseUint(id, 10, 64); err != nil {
		t.Fatalf("OK reply carries non-numeric id %q", id)
	}
	return id
}

// TestRingStatsNamesMachine runs RINGSTATS against live transport nodes
// of both registered machine families and requires the first line to
// identify the routing machine, so operators can tell at a glance which
// control plane a node is running.
func TestRingStatsNamesMachine(t *testing.T) {
	for _, machine := range []string{"chord", "koorde"} {
		t.Run(machine, func(t *testing.T) {
			tcfg := transport.DefaultConfig(42, "127.0.0.1:0")
			tcfg.Space = dht.NewSpace(16)
			tcfg.Machine = machine
			node, err := transport.New(tcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer node.Close()
			node.Create()
			s := &apiSession{self: node.Self().ID, do: node.Do, node: node}
			replies, quit := runCmd(s, "RINGSTATS")
			if quit {
				t.Fatal("RINGSTATS closed the session")
			}
			if len(replies) == 0 || replies[0] != "MACHINE "+machine {
				t.Fatalf("want first reply %q, got %q", "MACHINE "+machine, replies)
			}
			if replies[len(replies)-1] != "END" {
				t.Fatalf("RINGSTATS reply not END-terminated: %q", replies)
			}
		})
	}
}

func TestUnknownCommandErrWithoutDrop(t *testing.T) {
	s, _ := newSimSession(t)
	replies, quit := runCmd(s, "FROBNICATE 1 2 3")
	if quit {
		t.Fatal("unknown command closed the session")
	}
	if len(replies) != 1 || !strings.HasPrefix(replies[0], "ERR unknown command") {
		t.Fatalf("want one ERR unknown command reply, got %q", replies)
	}
	// The session must still answer afterwards.
	replies, quit = runCmd(s, "STREAMS")
	if quit || len(replies) == 0 || !strings.HasPrefix(replies[len(replies)-1], "END") {
		t.Fatalf("session dead after unknown command: %q", replies)
	}
}

// TestBadArgsErrWithoutDrop drives every verb with malformed arguments
// and requires the structured failure contract: exactly one "ERR ..."
// line, session stays open.
func TestBadArgsErrWithoutDrop(t *testing.T) {
	s, _ := newSimSession(t)
	lines := []string{
		"QUERY",
		"QUERY x 1 0,0,0",
		"QUERY 0.5 0 0,0,0",
		"QUERY 0.5 1 0,0",
		"QUERY 0.5 1 a,b,c",
		"MATCHES",
		"MATCHES abc",
		"SUB",
		"SUB x 0,0,0 1,1,1",
		"SUB 5 0,0 1,1,1",
		"SUB 5 0,0,0 a,b,c",
		"UNSUB",
		"UNSUB nope",
		"SUBMATCHES",
		"SUBMATCHES x",
		"AGG",
		"AGG a 10 5",
		"AGG 0 b 5",
		"AGG 0 10 -1",
		"AGGRESULT",
		"AGGRESULT x",
		"TOPK",
		"TOPK 0 0 10 5",
		"TOPK 2 x 10 5",
		"TOPK 2 0 y 5",
		"TOPK 2 0 10 0",
		"TOPKRESULT",
		"TOPKRESULT x",
		// Node-backed verbs on a simulator-only session.
		"RING",
		"RINGSTATS",
		"STATS",
	}
	for _, line := range lines {
		replies, quit := runCmd(s, line)
		if quit {
			t.Errorf("%q closed the session", line)
			continue
		}
		if len(replies) != 1 || !strings.HasPrefix(replies[0], "ERR ") {
			t.Errorf("%q: want one ERR reply, got %q", line, replies)
		}
	}
	// And after all that abuse the session still works.
	if replies, quit := runCmd(s, "STREAMS"); quit || len(replies) == 0 {
		t.Fatalf("session dead after bad-arg volley: %q", replies)
	}
}

func TestQuitRepliesBye(t *testing.T) {
	s, _ := newSimSession(t)
	replies, quit := runCmd(s, "QUIT")
	if !quit {
		t.Fatal("QUIT did not close the session")
	}
	if len(replies) != 1 || replies[0] != "BYE" {
		t.Fatalf("want BYE, got %q", replies)
	}
}

// TestSubscriptionLifecycle walks SUB -> SUBMATCHES -> UNSUB end to end
// over the simulated overlay.
func TestSubscriptionLifecycle(t *testing.T) {
	s, eng := newSimSession(t)
	eng.RunFor(5 * sim.Second)

	replies, _ := runCmd(s, "SUB 60 -1000,-1000,-1000 1000,1000,1000")
	id := okID(t, replies)
	eng.RunFor(5 * sim.Second)

	replies, quit := runCmd(s, "SUBMATCHES "+id)
	if quit {
		t.Fatal("SUBMATCHES closed the session")
	}
	last := replies[len(replies)-1]
	if !strings.HasPrefix(last, "END ") {
		t.Fatalf("SUBMATCHES did not end with END: %q", replies)
	}
	n, _ := strconv.Atoi(strings.TrimPrefix(last, "END "))
	if n == 0 || len(replies) != n+1 {
		t.Fatalf("want >0 matches and END agreeing with line count, got %q", replies)
	}
	for _, r := range replies[:n] {
		if !strings.HasPrefix(r, "MATCH ") {
			t.Fatalf("non-MATCH line before END: %q", r)
		}
	}

	if replies, _ := runCmd(s, "UNSUB "+id); len(replies) != 1 || replies[0] != "OK" {
		t.Fatalf("UNSUB: want OK, got %q", replies)
	}
}

// TestAggregateAndTopK exercises the windowed-aggregate and top-k verbs
// against live sketch traffic.
func TestAggregateAndTopK(t *testing.T) {
	s, eng := newSimSession(t)
	eng.RunFor(5 * sim.Second)

	replies, _ := runCmd(s, "AGG -1000 1000 60")
	aggID := okID(t, replies)
	replies, _ = runCmd(s, "TOPK 2 -1000 1000 60")
	topkID := okID(t, replies)
	eng.RunFor(5 * sim.Second)

	replies, quit := runCmd(s, "AGGRESULT "+aggID)
	if quit {
		t.Fatal("AGGRESULT closed the session")
	}
	if !strings.HasPrefix(replies[0], "COUNT ") {
		t.Fatalf("AGGRESULT must lead with COUNT: %q", replies)
	}
	count, _ := strconv.ParseUint(strings.TrimPrefix(replies[0], "COUNT "), 10, 64)
	if count == 0 {
		t.Fatalf("aggregate saw no stream values: %q", replies)
	}
	if !strings.HasPrefix(replies[len(replies)-1], "END ") {
		t.Fatalf("AGGRESULT did not end with END: %q", replies)
	}

	replies, quit = runCmd(s, "TOPKRESULT "+topkID)
	if quit {
		t.Fatal("TOPKRESULT closed the session")
	}
	if len(replies) < 2 || !strings.HasPrefix(replies[0], "RANK 1 ") {
		t.Fatalf("want at least one RANK line, got %q", replies)
	}
	if !strings.HasPrefix(replies[len(replies)-1], "END ") {
		t.Fatalf("TOPKRESULT did not end with END: %q", replies)
	}
}
