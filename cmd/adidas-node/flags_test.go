package main

import (
	"strings"
	"testing"
)

func TestValidateDataPlaneRejects(t *testing.T) {
	cases := []struct {
		name            string
		workers, shards int
		wantErr         string
	}{
		{"workers below -1", -2, 0, "-workers -2"},
		{"workers absurd", maxWorkers + 1, 0, "-workers"},
		{"shards negative", 0, -1, "-shards -1"},
		{"shards absurd", 0, maxShards + 1, "-shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := validateDataPlane(tc.workers, tc.shards, 4)
			if err == nil {
				t.Fatalf("validateDataPlane(%d, %d, 4): want error, got nil", tc.workers, tc.shards)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateDataPlaneAccepts(t *testing.T) {
	cases := []struct {
		name            string
		workers, shards int
		procs           int
		wantShards      int
	}{
		{"all defaults", 0, 0, 4, 16},
		{"serialize", -1, 8, 4, 8},
		{"explicit", 2, 32, 4, 32},
		{"procs floor", 0, 0, 0, 4}, // procs clamps to 1 -> 4 shards
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, warnings, err := validateDataPlane(tc.workers, tc.shards, tc.procs)
			if err != nil {
				t.Fatalf("validateDataPlane(%d, %d, %d): %v", tc.workers, tc.shards, tc.procs, err)
			}
			if got != tc.wantShards {
				t.Fatalf("resolved shards = %d, want %d", got, tc.wantShards)
			}
			if len(warnings) != 0 {
				t.Fatalf("unexpected warnings: %v", warnings)
			}
		})
	}
}

func TestValidateDataPlaneWarns(t *testing.T) {
	// 200 shards on 4 CPUs is 50 per core — well past the 16x advice line.
	_, warnings, err := validateDataPlane(0, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-shards 200") {
		t.Fatalf("want one shards warning, got %v", warnings)
	}

	// 64 workers on 4 CPUs warns too.
	_, warnings, err = validateDataPlane(64, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-workers 64") {
		t.Fatalf("want one workers warning, got %v", warnings)
	}
}
