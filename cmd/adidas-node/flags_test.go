package main

import (
	"strings"
	"testing"
)

func TestValidateDataPlaneRejects(t *testing.T) {
	cases := []struct {
		name            string
		workers, shards int
		wantErr         string
	}{
		{"workers below -1", -2, 0, "-workers -2"},
		{"workers absurd", maxWorkers + 1, 0, "-workers"},
		{"shards negative", 0, -1, "-shards -1"},
		{"shards absurd", 0, maxShards + 1, "-shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := validateDataPlane(tc.workers, tc.shards, 4)
			if err == nil {
				t.Fatalf("validateDataPlane(%d, %d, 4): want error, got nil", tc.workers, tc.shards)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateDataPlaneAccepts(t *testing.T) {
	cases := []struct {
		name            string
		workers, shards int
		procs           int
		wantShards      int
	}{
		{"all defaults", 0, 0, 4, 16},
		{"serialize", -1, 8, 4, 8},
		{"explicit", 2, 32, 4, 32},
		{"procs floor", 0, 0, 0, 4}, // procs clamps to 1 -> 4 shards
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, warnings, err := validateDataPlane(tc.workers, tc.shards, tc.procs)
			if err != nil {
				t.Fatalf("validateDataPlane(%d, %d, %d): %v", tc.workers, tc.shards, tc.procs, err)
			}
			if got != tc.wantShards {
				t.Fatalf("resolved shards = %d, want %d", got, tc.wantShards)
			}
			if len(warnings) != 0 {
				t.Fatalf("unexpected warnings: %v", warnings)
			}
		})
	}
}

func TestValidateLoadBalanceRejects(t *testing.T) {
	cases := []struct {
		name                       string
		vnodes, replicas, ringHint int
		wantErr                    string
	}{
		{"vnodes zero", 0, 1, 0, "-vnodes 0"},
		{"vnodes negative", -3, 1, 0, "-vnodes -3"},
		{"replicas zero", 1, 0, 0, "-replicas 0"},
		{"replicas negative", 1, -2, 0, "-replicas -2"},
		{"replicas beyond ring", 1, 10, 5, "-replicas 10"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := validateLoadBalance(tc.vnodes, tc.replicas, tc.ringHint)
			if err == nil {
				t.Fatalf("validateLoadBalance(%d, %d, %d): want error, got nil", tc.vnodes, tc.replicas, tc.ringHint)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateLoadBalanceAccepts(t *testing.T) {
	cases := []struct {
		name                       string
		vnodes, replicas, ringHint int
	}{
		{"defaults", 1, 1, 0},
		{"replication on", 1, 3, 0},
		{"replicas at ring size", 1, 5, 5},
		{"no hint no ceiling", 1, 1000, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warnings, err := validateLoadBalance(tc.vnodes, tc.replicas, tc.ringHint)
			if err != nil {
				t.Fatalf("validateLoadBalance(%d, %d, %d): %v", tc.vnodes, tc.replicas, tc.ringHint, err)
			}
			if len(warnings) != 0 {
				t.Fatalf("unexpected warnings: %v", warnings)
			}
		})
	}
}

func TestValidateLoadBalanceWarnsOnPositionBlowup(t *testing.T) {
	// 16 vnodes on an expected 500-node ring is 8000 ring positions —
	// past the 4096 advice line.
	warnings, err := validateLoadBalance(16, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-vnodes 16") {
		t.Fatalf("want one vnodes warning, got %v", warnings)
	}
	// 4 vnodes on 500 nodes is 2000 positions — under the line, no warning.
	warnings, err = validateLoadBalance(4, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
}

func TestValidateSubstrate(t *testing.T) {
	// Empty resolves to the default machine; every registered machine is
	// accepted as-is.
	for _, tc := range []struct{ in, want string }{
		{"", "chord"},
		{"chord", "chord"},
		{"koorde", "koorde"},
	} {
		got, err := validateSubstrate(tc.in)
		if err != nil {
			t.Fatalf("validateSubstrate(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("validateSubstrate(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Unknown names are rejected with the registered machines listed, so
	// the operator can see what the binary actually supports.
	for _, bad := range []string{"pastry", "kademlia", "Chord"} {
		_, err := validateSubstrate(bad)
		if err == nil {
			t.Fatalf("validateSubstrate(%q): want error, got nil", bad)
		}
		if !strings.Contains(err.Error(), bad) || !strings.Contains(err.Error(), "chord") || !strings.Contains(err.Error(), "koorde") {
			t.Fatalf("error %q should name the bad value and list registered machines", err)
		}
	}
}

func TestValidateDataPlaneWarns(t *testing.T) {
	// 200 shards on 4 CPUs is 50 per core — well past the 16x advice line.
	_, warnings, err := validateDataPlane(0, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-shards 200") {
		t.Fatalf("want one shards warning, got %v", warnings)
	}

	// 64 workers on 4 CPUs warns too.
	_, warnings, err = validateDataPlane(64, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "-workers 64") {
		t.Fatalf("want one workers warning, got %v", warnings)
	}
}
