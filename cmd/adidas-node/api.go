package main

import (
	"fmt"
	"strconv"
	"strings"

	"streamdex/internal/core"
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
)

// apiSession processes one client connection's command stream. The live
// server builds it around a transport node; unit tests build it around a
// simulator middleware with an inline do-func. That split is why every
// middleware access goes through do (the serialization domain of mw) and
// why the node-backed verbs (RING, RINGSTATS, STATS) check node for nil.
type apiSession struct {
	mw   *core.Middleware
	self dht.Key
	do   func(func())
	node *transport.Node
}

// handle executes one command line, writing replies via reply, and
// reports whether the connection should close. Malformed input of any
// shape answers a single "ERR <reason>" line and keeps the session
// alive — a client typo must never cost the connection.
func (s *apiSession) handle(reply func(format string, args ...any), fields []string) (quit bool) {
	switch strings.ToUpper(fields[0]) {
	case "QUERY":
		id, err := s.postQuery(fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		reply("OK %d", id)
	case "MATCHES":
		id, err := oneID("MATCHES <query-id>", fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		var matches []query.Match
		s.do(func() { matches = s.mw.SimilarityMatches(id) })
		for _, m := range matches {
			reply("MATCH %s %d %g", m.StreamID, m.Seq, m.DistLB)
		}
		reply("END %d", len(matches))
	case "SUB":
		id, err := s.postSub(fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		reply("OK %d", id)
	case "UNSUB":
		id, err := oneID("UNSUB <sub-id>", fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		var cerr error
		s.do(func() { cerr = s.mw.CancelSubscription(s.self, id) })
		if cerr != nil {
			reply("ERR %v", cerr)
			return false
		}
		reply("OK")
	case "SUBMATCHES":
		id, err := oneID("SUBMATCHES <sub-id>", fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		var matches []query.Match
		s.do(func() { matches = s.mw.SubscriptionMatches(id) })
		for _, m := range matches {
			reply("MATCH %s %d", m.StreamID, m.Seq)
		}
		reply("END %d", len(matches))
	case "AGG":
		id, err := s.postAgg(fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		reply("OK %d", id)
	case "AGGRESULT":
		id, err := oneID("AGGRESULT <agg-id>", fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		var count uint64
		var streams []string
		var q50 float64
		var ok bool
		s.do(func() {
			count = s.mw.AggCount(id)
			streams = s.mw.AggStreams(id)
			q50, ok = s.mw.AggQuantile(id, 0.5)
		})
		reply("COUNT %d", count)
		if ok {
			reply("Q50 %g", q50)
		}
		for _, sid := range streams {
			reply("STREAM %s", sid)
		}
		reply("END %d", len(streams))
	case "TOPK":
		id, err := s.postTopK(fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		reply("OK %d", id)
	case "TOPKRESULT":
		id, err := oneID("TOPKRESULT <topk-id>", fields[1:])
		if err != nil {
			reply("ERR %v", err)
			return false
		}
		var counts []cqe.StreamCount
		s.do(func() { counts = s.mw.TopK(id) })
		for i, c := range counts {
			reply("RANK %d %s %d", i+1, c.StreamID, c.Count)
		}
		reply("END %d", len(counts))
	case "RING":
		if s.node == nil {
			reply("ERR RING requires a live node")
			return false
		}
		info := s.node.Ring()
		reply("SELF %d %s", info.Self.ID, info.Self.Addr)
		if info.Pred != nil {
			reply("PRED %d %s", info.Pred.ID, info.Pred.Addr)
		}
		for _, su := range info.SuccList {
			reply("SUCC %d %s", su.ID, su.Addr)
		}
		reply("END")
	case "RINGSTATS":
		if s.node == nil {
			reply("ERR RINGSTATS requires a live node")
			return false
		}
		// Control-plane health: how hard maintenance is working and
		// what it has had to repair (stabilize rounds/misses, successor
		// rotations, predecessor drops, finger repairs, stale or
		// TTL-dropped lookups).
		rs := s.node.RingStats()
		reply("MACHINE %s", rs.Machine)
		reply("STABILIZE-ROUNDS %d", rs.StabilizeRounds)
		reply("STABILIZE-MISSES %d", rs.StabilizeMisses)
		reply("SUCC-ROTATIONS %d", rs.SuccRotations)
		reply("PRED-DROPS %d", rs.PredDrops)
		reply("FINGER-REPAIRS %d", rs.FingerRepairs)
		reply("STALE-FIND-RESPS %d", rs.StaleFindResps)
		reply("FIND-DROPS %d", rs.FindDrops)
		reply("END")
	case "STATS":
		if s.node == nil {
			reply("ERR STATS requires a live node")
			return false
		}
		// Data-plane health: run-loop queue saturation, worker-pool
		// throughput/backpressure, and MBR store load.
		ls := s.node.LoopStats()
		reply("LOOP-POSTED %d", ls.Posted)
		reply("LOOP-DEPTH %d", ls.Depth)
		reply("LOOP-HIGH-WATER %d", ls.HighWater)
		reply("LOOP-BLOCKED-POSTS %d", ls.BlockedPosts)
		reply("LOOP-BLOCKED-NS %d", ls.BlockedNs)
		ps := s.node.PoolStats()
		reply("POOL-WORKERS %d", ps.Workers)
		reply("POOL-SUBMITTED %d", ps.Submitted)
		reply("POOL-INLINE %d", ps.Inline)
		reply("POOL-DEPTH %d", ps.Depth)
		reply("POOL-HIGH-WATER %d", ps.HighWater)
		reply("POOL-BLOCKED-SUBS %d", ps.BlockedSubs)
		reply("POOL-BLOCKED-NS %d", ps.BlockedNanos)
		dc := s.mw.DataCenter(s.self)
		puts, scanned := dc.Store().Stats()
		reply("STORE-LEN %d", dc.Store().Len())
		reply("STORE-PUTS %d", puts)
		reply("STORE-SCANNED %d", scanned)
		// Lock-free read path: snapshot publications, copy-on-write
		// volume, decode-arena hit rate, and the UDP datagram plane.
		dp := gatherDataPlane(s.node, dc)
		reply("STORE-EPOCHS %d", dp.StoreEpochs)
		reply("STORE-COW-COPIED %d", dp.StoreCowCopied)
		reply("STORE-MERGES %d", dp.StoreMerges)
		reply("ARENA-CARVES %d", dp.ArenaCarves)
		reply("ARENA-REFILLS %d", dp.ArenaRefills)
		reply("ARENA-HIT-RATE %.4f", dp.ArenaHitRate())
		reply("ARENA-INTERN-HITS %d", dp.ArenaInternHits)
		reply("ARENA-INTERN-MISSES %d", dp.ArenaInternMisses)
		reply("UDP-SENT %d", dp.UDPSent)
		reply("UDP-RECV %d", dp.UDPRecv)
		reply("UDP-FALLBACK %d", dp.UDPFallback)
		reply("ADMIT-SHED %d", dp.AdmitShed)
		reply("SUBS %d", dc.SubCount())
		reply("STANDING-SUBS %d", dc.StandingSubCount())
		reply("DROPPED %d", s.node.Dropped())
		reply("END")
	case "STREAMS":
		var sids []string
		s.do(func() { sids = s.mw.DataCenter(s.self).StreamIDs() })
		for _, sid := range sids {
			reply("STREAM %s", sid)
		}
		reply("END %d", len(sids))
	case "QUIT":
		reply("BYE")
		return true
	default:
		reply("ERR unknown command %q", fields[0])
	}
	return false
}

// postQuery parses "QUERY <radius> <lifespan-seconds> <v1,v2,...>" and
// posts the similarity query at this node.
func (s *apiSession) postQuery(args []string) (query.ID, error) {
	if len(args) != 3 {
		return 0, fmt.Errorf("usage: QUERY <radius> <lifespan-seconds> <v1,v2,...>")
	}
	radius, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("bad radius %q", args[0])
	}
	life, err := parseLifespan(args[1])
	if err != nil {
		return 0, err
	}
	f, err := parseFeature(args[2], s.mw.Config().FeatureDims)
	if err != nil {
		return 0, err
	}
	var qid query.ID
	var qerr error
	s.do(func() { qid, qerr = s.mw.PostSimilarity(s.self, f, radius, life) })
	return qid, qerr
}

// postSub parses "SUB <lifespan-seconds> <lo1,...> <hi1,...>" and
// registers the standing predicate subscription at this node.
func (s *apiSession) postSub(args []string) (query.ID, error) {
	if len(args) != 3 {
		return 0, fmt.Errorf("usage: SUB <lifespan-seconds> <lo1,...> <hi1,...>")
	}
	life, err := parseLifespan(args[0])
	if err != nil {
		return 0, err
	}
	dims := s.mw.Config().FeatureDims
	lo, err := parseFeature(args[1], dims)
	if err != nil {
		return 0, err
	}
	hi, err := parseFeature(args[2], dims)
	if err != nil {
		return 0, err
	}
	var id query.ID
	var perr error
	s.do(func() { id, perr = s.mw.PostSubscription(s.self, lo, hi, life) })
	return id, perr
}

// postAgg parses "AGG <lo> <hi> <lifespan-seconds>" and posts the
// windowed-aggregate query over the value range [lo, hi].
func (s *apiSession) postAgg(args []string) (query.ID, error) {
	if len(args) != 3 {
		return 0, fmt.Errorf("usage: AGG <lo> <hi> <lifespan-seconds>")
	}
	lo, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return 0, fmt.Errorf("bad range bound %q", args[0])
	}
	hi, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return 0, fmt.Errorf("bad range bound %q", args[1])
	}
	life, err := parseLifespan(args[2])
	if err != nil {
		return 0, err
	}
	var id query.ID
	var perr error
	s.do(func() { id, perr = s.mw.PostAggregate(s.self, lo, hi, life) })
	return id, perr
}

// postTopK parses "TOPK <k> <lo> <hi> <lifespan-seconds>" and posts the
// distributed top-k frequency monitor over the value range [lo, hi].
func (s *apiSession) postTopK(args []string) (query.ID, error) {
	if len(args) != 4 {
		return 0, fmt.Errorf("usage: TOPK <k> <lo> <hi> <lifespan-seconds>")
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 1 {
		return 0, fmt.Errorf("bad k %q", args[0])
	}
	lo, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return 0, fmt.Errorf("bad range bound %q", args[1])
	}
	hi, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return 0, fmt.Errorf("bad range bound %q", args[2])
	}
	life, err := parseLifespan(args[3])
	if err != nil {
		return 0, err
	}
	var id query.ID
	var perr error
	s.do(func() { id, perr = s.mw.PostTopK(s.self, k, lo, hi, life) })
	return id, perr
}

// oneID parses the single <id> argument shared by the result-polling
// verbs.
func oneID(usage string, args []string) (query.ID, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("usage: %s", usage)
	}
	v, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad id %q", args[0])
	}
	return query.ID(v), nil
}

// parseLifespan converts a positive decimal second count to sim time.
func parseLifespan(arg string) (sim.Time, error) {
	secs, err := strconv.ParseFloat(arg, 64)
	if err != nil || secs <= 0 {
		return 0, fmt.Errorf("bad lifespan %q", arg)
	}
	return sim.Time(secs * float64(sim.Second)), nil
}

// parseFeature parses a comma-separated coordinate list into a feature
// of exactly dims dimensions.
func parseFeature(arg string, dims int) (summary.Feature, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != dims {
		return nil, fmt.Errorf("feature has %d dims, middleware uses %d", len(parts), dims)
	}
	f := make(summary.Feature, dims)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad feature coordinate %q", p)
		}
		f[i] = v
	}
	return f, nil
}

// gatherDataPlane assembles the read-path counter snapshot from its three
// sources: the MBR store's snapshot lifecycle, the transport's decode
// arenas, and the UDP datagram plane.
func gatherDataPlane(node *transport.Node, dc *core.DataCenter) metrics.DataPlane {
	ss := dc.Store().SnapStats()
	as := node.ArenaStats()
	sent, recv, fb := node.UDPStats()
	return metrics.DataPlane{
		StoreEpochs:       ss.Epochs,
		StoreCowCopied:    ss.CowCopied,
		StoreMerges:       ss.Merges,
		ArenaCarves:       as.Carves,
		ArenaRefills:      as.Refills,
		ArenaInternHits:   as.InternHits,
		ArenaInternMisses: as.InternMisses,
		UDPSent:           sent,
		UDPRecv:           recv,
		UDPFallback:       fb,
		AdmitShed:         dc.AdmitShedCount(),
	}
}
