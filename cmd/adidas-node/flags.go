package main

import (
	"fmt"
	"strings"

	"streamdex/internal/overlay"
)

// Limits for the data-plane sizing flags. Both caps are far above anything
// a single node can use productively; hitting one almost always means a
// typo (e.g. -shards 40000 for -shards 40) that would otherwise only show
// up as mysterious memory use or scheduler thrash.
const (
	maxWorkers = 1 << 10 // worker goroutines on the data-plane pool
	maxShards  = 1 << 16 // MBR store shards
)

// shardsWarnFactor: beyond this many shards per core the extra shards no
// longer reduce writer contention, they only shrink each band's occupancy
// and add per-shard walk overhead.
const shardsWarnFactor = 16

// vnodeWarnTotal: past this many total ring positions (vnodes × expected
// ring size) the per-position control traffic (stabilization, load
// gossip, republish fan-out) starts to rival the data plane it is meant
// to balance.
const vnodeWarnTotal = 4096

// validateLoadBalance checks the -vnodes/-replicas pair against the
// expected ring size, returning human-readable warnings or an error for
// values that must be rejected. ringHint is the operator's estimate of
// the cluster size (0 = unknown): replication cannot usefully exceed the
// node count, so a replicas value above the hint is almost always a typo
// for a different knob.
func validateLoadBalance(vnodes, replicas, ringHint int) (warnings []string, err error) {
	if vnodes < 1 {
		return nil, fmt.Errorf("-vnodes %d: must be at least 1 (1 = a single ring position)", vnodes)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("-replicas %d: must be at least 1 (1 = no replication)", replicas)
	}
	if ringHint > 0 && replicas > ringHint {
		return nil, fmt.Errorf("-replicas %d exceeds the expected ring size %d: a covering range cannot spread over more nodes than the ring holds", replicas, ringHint)
	}
	if ringHint > 0 && vnodes*ringHint > vnodeWarnTotal {
		warnings = append(warnings,
			fmt.Sprintf("-vnodes %d on an expected %d-node ring is %d ring positions: control traffic grows with positions, not nodes", vnodes, ringHint, vnodes*ringHint))
	}
	return warnings, nil
}

// validateSubstrate resolves the -substrate flag against the overlay
// machine registry: empty selects the default ("chord"), anything else
// must be a registered routing machine. Every node of a cluster must run
// the same machine — the message kinds are disjoint on the wire, so a
// mixed cluster fails at decode rather than converging by accident.
func validateSubstrate(name string) (resolved string, err error) {
	if name == "" {
		name = "chord"
	}
	if _, ok := overlay.Lookup(name); !ok {
		return "", fmt.Errorf("-substrate %q: unknown routing machine (registered: %s)",
			name, strings.Join(overlay.Names(), ", "))
	}
	return name, nil
}

// validateDataPlane checks the -workers/-shards pair against the host's
// GOMAXPROCS, returning the resolved shard count, human-readable warnings
// to log, or an error for values that must be rejected.
//
// Accepted worker values: -1 (serialize on the run loop), 0 (one worker
// per CPU), or an explicit positive count. Other negatives are rejected
// rather than silently treated as -1. Shards must be non-negative; 0
// resolves to 4 bands per CPU so two workers rarely contend for the same
// band writer lock even on skewed L₁ distributions.
func validateDataPlane(workers, shards, procs int) (resolvedShards int, warnings []string, err error) {
	if procs < 1 {
		procs = 1
	}
	switch {
	case workers < -1:
		return 0, nil, fmt.Errorf("-workers %d: negative counts are ambiguous; use -1 to serialize on the run loop", workers)
	case workers > maxWorkers:
		return 0, nil, fmt.Errorf("-workers %d exceeds the %d limit", workers, maxWorkers)
	}
	switch {
	case shards < 0:
		return 0, nil, fmt.Errorf("-shards %d: shard count cannot be negative (0 selects 4 per CPU)", shards)
	case shards > maxShards:
		return 0, nil, fmt.Errorf("-shards %d exceeds the %d limit", shards, maxShards)
	}
	resolvedShards = shards
	if resolvedShards == 0 {
		resolvedShards = 4 * procs
	}
	if workers > 4*procs {
		warnings = append(warnings,
			fmt.Sprintf("-workers %d on %d CPUs: more than 4 workers per CPU only adds scheduling overhead", workers, procs))
	}
	if resolvedShards > shardsWarnFactor*procs {
		warnings = append(warnings,
			fmt.Sprintf("-shards %d on %d CPUs: far more shards than cores thins each band without reducing contention", resolvedShards, procs))
	}
	return resolvedShards, warnings, nil
}
