// Command adidas-node runs one live node of the distributed stream index:
// a TCP transport endpoint (internal/transport) hosting the full middleware
// (internal/core), sourcing locally generated streams and answering
// similarity queries over a line-oriented client protocol.
//
// A cluster is built exactly like the paper's deployment story: start the
// first node with just -listen, then start every further node with
// -join pointing at any running node. Ring maintenance is continuous;
// nodes can come up in any order after the first.
//
//	adidas-node -listen 127.0.0.1:7001 -api 127.0.0.1:8001 -streams 2
//	adidas-node -listen 127.0.0.1:7002 -api 127.0.0.1:8002 -streams 2 \
//	            -join 127.0.0.1:7001
//
// The client API (telnet-friendly, one command per line):
//
//	QUERY <radius> <lifespan-seconds> <v1,v2,...>   post a similarity query
//	    -> OK <query-id>
//	MATCHES <query-id>                              matches received so far
//	    -> MATCH <stream> <seq> <distLB>  (repeated)
//	    -> END <count>
//	SUB <lifespan-seconds> <lo1,...> <hi1,...>      standing predicate subscription
//	    -> OK <sub-id>
//	UNSUB <sub-id>                                  cancel a subscription
//	SUBMATCHES <sub-id>                             matches pushed so far
//	AGG <lo> <hi> <lifespan-seconds>                windowed aggregate over [lo, hi]
//	    -> OK <agg-id>
//	AGGRESULT <agg-id>                              merged count/median/streams
//	TOPK <k> <lo> <hi> <lifespan-seconds>           top-k MBR frequency monitor
//	    -> OK <topk-id>
//	TOPKRESULT <topk-id>                            current ranking
//	RING                                            ring pointers
//	RINGSTATS                                       ring-maintenance counters
//	STATS                                           data-plane counters (loop, pool, store, arenas, UDP)
//	STREAMS                                         locally sourced streams
//	QUIT                                            close the connection
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streamdex/internal/core"
	"streamdex/internal/dht"
	_ "streamdex/internal/koorde" // register the koorde routing machine
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/transport"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "transport listen address")
		api       = flag.String("api", "", "client API listen address (default: transport port + 1000)")
		join      = flag.String("join", "", "bootstrap address of a running node (empty: create a new ring)")
		idFlag    = flag.Uint64("id", 0, "ring identifier (default: hash of the listen address)")
		mBits     = flag.Uint("m", 32, "identifier bits of the ring (must match across the cluster)")
		streams   = flag.Int("streams", 1, "number of random-walk streams to source locally")
		window    = flag.Int("window", 256, "sliding window size (points)")
		beta      = flag.Int("beta", 10, "MBR batching factor")
		period    = flag.Duration("period", 200*time.Millisecond, "stream sampling period")
		push      = flag.Duration("push", 2*time.Second, "push period (notify/response cycle)")
		seed      = flag.Int64("seed", 1, "seed for stream generators and tick staggering")
		workers   = flag.Int("workers", 0, "data-plane worker goroutines (0: one per CPU, -1: serialize on the run loop)")
		shards    = flag.Int("shards", 0, "MBR store shards (0: 4×GOMAXPROCS)")
		udp       = flag.Bool("udp", false, "publish MBR updates as fire-and-forget UDP datagrams (ring control and queries stay on TCP)")
		sketches  = flag.Bool("sketches", true, "maintain windowed sketches per stream (required for AGG queries)")
		pprofAt   = flag.String("pprof", "", "serve net/http/pprof on this address, with mutex and block profiling enabled")
		vnodes    = flag.Int("vnodes", 1, "ring positions per node (live deployments run one process per position; >1 is rejected)")
		replicas  = flag.Int("replicas", 1, "covering-range replication factor (1 = no replication)")
		ringHint  = flag.Int("ring-hint", 0, "expected cluster size, used to sanity-check -vnodes/-replicas (0 = unknown)")
		admRate   = flag.Float64("admit-rate", 0, "admission control: MBR stores allowed per second (0 = unlimited)")
		admBurst  = flag.Float64("admit-burst", 0, "admission control: token-bucket burst capacity (required with -admit-rate)")
		substrate = flag.String("substrate", "chord", "routing machine for the control plane (chord or koorde; must match across the cluster)")
	)
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	log.SetPrefix("adidas-node ")

	if err := run(*listen, *api, *join, *substrate, *idFlag, *mBits, *streams, *window, *beta, *period, *push, *seed,
		*workers, *shards, *vnodes, *replicas, *ringHint, *admRate, *admBurst, *udp, *sketches, *pprofAt); err != nil {
		log.Fatal(err)
	}
}

func run(listen, api, join, substrate string, idFlag uint64, mBits uint, streams, window, beta int,
	period, push time.Duration, seed int64, workers, shards, vnodes, replicas, ringHint int,
	admRate, admBurst float64, udp, sketches bool, pprofAt string) error {
	if streams < 0 || window < 2 || beta < 1 || period <= 0 || push <= 0 {
		return fmt.Errorf("invalid stream/window/beta/period configuration")
	}
	shards, warnings, err := validateDataPlane(workers, shards, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	substrate, err = validateSubstrate(substrate)
	if err != nil {
		return err
	}
	lbWarnings, err := validateLoadBalance(vnodes, replicas, ringHint)
	if err != nil {
		return err
	}
	if vnodes > 1 {
		// The simulator multiplexes many ring positions onto one process; a
		// live deployment gets the same effect by starting more processes.
		return fmt.Errorf("-vnodes %d: a live node is one process per ring position; start %d processes with distinct -id values instead", vnodes, vnodes)
	}
	if admRate < 0 || admBurst < 0 {
		return fmt.Errorf("-admit-rate/-admit-burst cannot be negative")
	}
	if admRate > 0 && admBurst <= 0 {
		return fmt.Errorf("-admit-rate %g needs a positive -admit-burst", admRate)
	}
	warnings = append(warnings, lbWarnings...)
	for _, w := range warnings {
		log.Printf("warning: %s", w)
	}
	space := dht.NewSpace(mBits)
	id := dht.Key(idFlag)
	if idFlag == 0 {
		id = space.HashString("node:" + listen)
	}
	if api == "" {
		var err error
		if api, err = deriveAPIAddr(listen); err != nil {
			return err
		}
	}

	if pprofAt != "" {
		// Contended-lock and blocked-goroutine profiles are what matter on
		// the data plane; the default sampling rates disable both.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(int(time.Millisecond / 4))
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", pprofAt)
			if err := http.ListenAndServe(pprofAt, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	tcfg := transport.DefaultConfig(id, listen)
	tcfg.Space = space
	tcfg.Workers = workers
	tcfg.Machine = substrate
	if udp {
		tcfg.UDP = true
		tcfg.DatagramKinds = []dht.Kind{core.KindMBR}
	}
	node, err := transport.New(tcfg)
	if err != nil {
		return err
	}
	if udp {
		log.Printf("UDP datagram plane enabled for MBR publishes")
	}
	defer node.Close()
	log.Printf("node %d listening on %s (routing machine: %s)", node.Self().ID, node.Addr(), substrate)

	if join == "" {
		node.Create()
		log.Printf("created new ring")
	} else {
		if err := node.Join(join, 30*time.Second); err != nil {
			return err
		}
		log.Printf("joined ring via %s", join)
	}

	ccfg := core.DefaultConfig()
	ccfg.Space = space
	ccfg.WindowSize = window
	ccfg.Beta = beta
	ccfg.PushPeriod = sim.Time(push / time.Microsecond)
	ccfg.Seed = seed
	ccfg.StoreShards = shards // resolved by validateDataPlane
	ccfg.Sketches = sketches
	ccfg.Replicas = replicas
	ccfg.AdmitRate = admRate
	ccfg.AdmitBurst = admBurst
	if replicas > 1 {
		log.Printf("covering-range replication: %d copies per MBR range", replicas)
	}

	var mw *core.Middleware
	node.Do(func() { mw, err = core.New(node, ccfg) })
	if err != nil {
		return err
	}

	// Source local streams: bounded random walks, the evaluation's
	// synthetic workload.
	rng := sim.NewRand(seed).Fork(fmt.Sprintf("node-%d", node.Self().ID))
	for i := 0; i < streams; i++ {
		st := stream.Stream{
			ID:     fmt.Sprintf("n%d-s%d", node.Self().ID, i),
			Gen:    stream.DefaultRandomWalk(rng.Fork(fmt.Sprintf("walk-%d", i))),
			Period: sim.Time(period / time.Microsecond),
		}
		node.Do(func() { err = mw.DataCenter(node.Self().ID).RegisterStream(st) })
		if err != nil {
			return err
		}
		log.Printf("sourcing stream %s (period %v)", st.ID, period)
	}

	apiLn, err := net.Listen("tcp", api)
	if err != nil {
		return fmt.Errorf("api listen %s: %w", api, err)
	}
	defer apiLn.Close()
	log.Printf("client API on %s", apiLn.Addr())

	go serveAPI(apiLn, node, mw)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	s := <-sigc
	log.Printf("received %v, shutting down", s)
	return nil
}

// deriveAPIAddr defaults the API port to the transport port + 1000.
func deriveAPIAddr(listen string) (string, error) {
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return "", fmt.Errorf("cannot derive -api from -listen %q: %v", listen, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port == 0 {
		return "", fmt.Errorf("cannot derive -api from -listen %q: give -api explicitly", listen)
	}
	return net.JoinHostPort(host, strconv.Itoa(port+1000)), nil
}

func serveAPI(ln net.Listener, node *transport.Node, mw *core.Middleware) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, node, mw)
	}
}

func serveConn(conn net.Conn, node *transport.Node, mw *core.Middleware) {
	defer conn.Close()
	sess := &apiSession{mw: mw, self: node.Self().ID, do: node.Do, node: node}
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
		w.Flush()
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if sess.handle(reply, fields) {
			return
		}
	}
}
