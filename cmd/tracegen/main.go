// Command tracegen emits synthetic traces in the formats the evaluation
// substitutes for the paper's datasets (see DESIGN.md §5):
//
//   - stock: S&P500-style daily records (date, ticker, open, high, low,
//     close, volume — one record per line), generated from correlated
//     geometric random walks;
//   - hostload: a CMU-host-load-style 1 Hz load trace, one value per line;
//   - walk: the paper's bounded random-walk synthetic stream.
//
// Usage:
//
//	tracegen -kind stock -tickers INTC,AAPL,IBM -days 250 > sp500.txt
//	tracegen -kind hostload -n 86400 > axp0.load
//	tracegen -kind walk -n 10000 > walk.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

func main() {
	var (
		kind    = flag.String("kind", "stock", "trace kind: stock, hostload, walk")
		tickers = flag.String("tickers", "INTC,AAPL,IBM,GE,XOM", "comma-separated tickers (stock)")
		days    = flag.Int("days", 250, "trading days to generate (stock)")
		n       = flag.Int("n", 10000, "number of samples (hostload, walk)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	rng := sim.NewRand(*seed)

	switch *kind {
	case "stock":
		syms := strings.Split(*tickers, ",")
		for i := range syms {
			syms[i] = strings.TrimSpace(syms[i])
		}
		m := stream.NewMarket(rng, syms)
		if err := stream.WriteRecords(out, m.Generate(*days)); err != nil {
			fail(err)
		}
	case "hostload":
		g := stream.DefaultHostLoad(rng)
		for i := 0; i < *n; i++ {
			fmt.Fprintf(out, "%.6f\n", g.Next())
		}
	case "walk":
		g := stream.DefaultRandomWalk(rng)
		for i := 0; i < *n; i++ {
			fmt.Fprintf(out, "%.6f\n", g.Next())
		}
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
