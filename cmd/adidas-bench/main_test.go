package main

import (
	"testing"

	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("50, 100,200")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{50, 100, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseSizes = %v", got)
		}
	}
	for _, bad := range []string{"", "abc", "1", "50,,100"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func fastBase() workload.Config {
	cfg := workload.DefaultConfig(0)
	cfg.Warmup = 5 * sim.Second
	cfg.Measure = 10 * sim.Second
	cfg.Core.WindowSize = 32
	cfg.Core.Beta = 5
	return cfg
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("no-such-exp", "", fastBase(), 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// Exercise the cheap experiment paths end to end (output goes to
	// stdout; we only assert absence of errors).
	for _, exp := range []string{"table1", "fig3b", "ablation-batch", "ablation-adaptive", "ablation-hierarchy"} {
		if err := run(exp, "", fastBase(), 1); err != nil {
			t.Fatalf("run(%s): %v", exp, err)
		}
	}
}

func TestRunSweepExperimentWithCustomSizes(t *testing.T) {
	if err := run("fig6a", "8,16", fastBase(), 2); err != nil {
		t.Fatal(err)
	}
	if err := run("fig6a", "bogus", fastBase(), 1); err == nil {
		t.Fatal("bogus sizes accepted")
	}
}
