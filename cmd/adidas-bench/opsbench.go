package main

// Operator benchmark mode. `adidas-bench -ops out.json` measures the
// continuous-query engine's data plane at GOMAXPROCS 1, 4 and 8 and writes
// the rows as JSON in the same streamdex-parbench schema as -parallel, so
// `-compare BENCH_4.json,BENCH_5.json` diffs the shared store rows and
// shows the operator rows alongside (the committed BENCH_5.json at the
// repo root). Five workloads:
//
//	store-match   parallel candidate walks (identical harness to -parallel,
//	              so the compare floor proves the operator hooks did not
//	              tax the similarity path)
//	store-ingest  parallel sorted inserts (same rationale)
//	sub-match     parallel overlap walks over a preloaded store — the
//	              standing subscription's registration recovery scan
//	sketch-fold   windowed-sketch ingestion plus periodic merge, the
//	              aggregate operator's absorb path
//	loopback-sub  end-to-end MBR publishes between two real TCP nodes, the
//	              receiver matching each against live standing
//	              subscriptions on its data-plane workers
//
// BENCH_FAST=1 shrinks the operation counts for smoke runs.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"streamdex/internal/core"
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
)

func runOpsBench(outPath string, seed int64) error {
	if outPath != "-" {
		f, err := os.OpenFile(outPath, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		f.Close()
	}
	fast := os.Getenv("BENCH_FAST") != ""
	sc := parScale{preload: 20000, walks: 50000, puts: 200000, frames: 30000, queries: 32, shards: 16, loopback: true}
	if fast {
		sc = parScale{preload: 2000, walks: 5000, puts: 20000, frames: 4000, queries: 8, shards: 16, loopback: true}
	}

	procs := []int{1, 4, 8}
	rep := parReport{
		Schema:    "streamdex-parbench/1",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Fast:      fast,
		Seed:      seed,
		Parallelism: parSection{
			Procs:    procs,
			Speedups: make(map[string]float64),
		},
	}
	if rep.CPUs < procs[len(procs)-1] {
		rep.Parallelism.Note = fmt.Sprintf(
			"host has %d CPU(s): rows above gomaxprocs=%d share cores, so their speedup cannot exceed 1",
			rep.CPUs, rep.CPUs)
	}

	perProc := make(map[string]map[int]float64)
	record := func(name string, p int, ops int64, elapsed time.Duration) {
		r := parRow{Name: name, GOMAXPROCS: p, Ops: ops}
		if ops > 0 {
			r.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
		}
		if s := elapsed.Seconds(); s > 0 {
			r.OpsPerSec = float64(ops) / s
		}
		rep.Parallelism.Rows = append(rep.Parallelism.Rows, r)
		if perProc[name] == nil {
			perProc[name] = make(map[int]float64)
		}
		perProc[name][p] = r.OpsPerSec
		fmt.Fprintf(os.Stderr, "%-14s gomaxprocs=%d %12.0f ns/op %12.0f ops/sec\n",
			name, p, r.NsPerOp, r.OpsPerSec)
	}

	for _, p := range procs {
		prev := runtime.GOMAXPROCS(p)
		ops, el := benchStoreMatch(sc, p, seed)
		record("store-match", p, ops, el)
		ops, el = benchStoreIngest(sc, p, seed)
		record("store-ingest", p, ops, el)
		ops, el = benchSubMatch(sc, p, seed)
		record("sub-match", p, ops, el)
		ops, el = benchSketchFold(sc, p, seed)
		record("sketch-fold", p, ops, el)
		if sc.loopback {
			ops, el, err := benchLoopbackSub(sc, seed)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return fmt.Errorf("loopback-sub at gomaxprocs=%d: %w", p, err)
			}
			record("loopback-sub", p, ops, el)
		}
		runtime.GOMAXPROCS(prev)
	}

	last := procs[0]
	for _, p := range procs {
		if p <= rep.CPUs && p > last {
			last = p
		}
	}
	for name, by := range perProc {
		if base := by[procs[0]]; base > 0 {
			rep.Parallelism.Speedups[name] = by[last] / base
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}

// benchSubMatch runs parallel overlap walks — the scan a standing
// subscription performs on registration to recover already-stored MBRs —
// over a preloaded sharded store, one goroutine per proc with reused
// scratch buffers.
func benchSubMatch(sc parScale, workers int, seed int64) (int64, time.Duration) {
	st := core.NewShardedStore(sc.shards)
	for _, b := range randomMBRs(sc.preload, seed) {
		st.Put(b)
	}
	rng := rand.New(rand.NewSource(seed + 5))
	type box struct{ lo, hi summary.Feature }
	boxes := make([]box, sc.walks)
	for i := range boxes {
		lo := summary.Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		w := rng.Float64()*0.2 + 0.05
		boxes[i] = box{lo: lo, hi: summary.Feature{lo[0] + w, lo[1] + w, lo[2] + w}}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []query.Match
			for i := w; i < len(boxes); i += workers {
				buf = st.AppendOverlapping(buf[:0], boxes[i].lo, boxes[i].hi, 1, 1)
			}
		}(w)
	}
	wg.Wait()
	return int64(sc.walks), time.Since(start)
}

// benchSketchFold times the aggregate operator's numeric path: windowed
// sketch ingestion with a periodic clone-and-fold, per-goroutine state
// exactly like per-stream sketches on the live node. Ops counts adds.
func benchSketchFold(sc parScale, workers int, seed int64) (int64, time.Duration) {
	adds := sc.puts
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 6 + int64(w)))
			sk := summary.NewSketch(5*sim.Second, 4, 8, 0, 1000)
			fold := cqe.NewSketchFold()
			seq := uint64(0)
			for i := w; i < adds; i += workers {
				sk.Add(sim.Time(i)*sim.Millisecond, rng.Float64()*1000)
				if i%1024 == 0 {
					seq++
					fold.Absorb("s", seq, sk.Clone())
					fold.Count(sim.Time(i) * sim.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	return int64(adds), time.Since(start)
}

// benchLoopbackSub measures the end-to-end operator data plane: node A
// pumps MBR publishes at node B over real TCP; B's worker pool indexes
// each and matches it against live standing subscriptions (the pub/sub
// operator's per-MBR hook). Ops is what the receiver indexed.
func benchLoopbackSub(sc parScale, seed int64) (int64, time.Duration, error) {
	space := dht.NewSpace(16)
	ids := []dht.Key{10_000, 40_000}
	nodes := make([]*transport.Node, len(ids))
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = space
		tc.StabilizeEvery = 50_000
		tc.FixFingersEvery = 50_000
		tc.QueueLen = 4096
		n, err := transport.New(tc)
		if err != nil {
			return 0, 0, err
		}
		defer n.Close()
		nodes[i] = n
	}
	nodes[0].Create()
	if err := nodes[1].Join(nodes[0].Addr(), 10*time.Second); err != nil {
		return 0, 0, err
	}
	if err := waitConverged(nodes); err != nil {
		return 0, 0, err
	}

	ccfg := core.DefaultConfig()
	ccfg.Space = space
	ccfg.StoreShards = sc.shards
	mws := make([]*core.Middleware, len(nodes))
	for i, n := range nodes {
		var err error
		n.Do(func() { mws[i], err = core.New(n, ccfg) })
		if err != nil {
			return 0, 0, err
		}
	}

	// Standing subscriptions for the receiver to match against: feature
	// boxes across the space, wide enough that a fair share of publishes
	// are genuine overlaps.
	rng := rand.New(rand.NewSource(seed + 7))
	for q := 0; q < sc.queries; q++ {
		lo := summary.Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		hi := summary.Feature{lo[0] + 0.4, lo[1] + 0.4, lo[2] + 0.4}
		var err error
		nodes[1].Do(func() {
			_, err = mws[1].PostSubscription(ids[1], lo, hi, sim.Time(1)<<50)
		})
		if err != nil {
			return 0, 0, err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		subs := 0
		for i := range nodes {
			subs += mws[i].DataCenter(ids[i]).StandingSubCount()
		}
		if subs >= sc.queries {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("only %d of %d standing subscriptions registered", subs, sc.queries)
		}
		time.Sleep(time.Millisecond)
	}

	mbrs := randomMBRs(sc.frames, seed+8)
	target := mws[1].DataCenter(ids[1])
	basePuts, _ := target.Store().Stats()

	const chunk = 256
	sent := 0
	start := time.Now()
	for sent < len(mbrs) {
		k := min(chunk, len(mbrs)-sent)
		lo := sent
		nodes[0].Do(func() {
			for i := 0; i < k; i++ {
				msg := &dht.Message{Kind: core.KindMBR, Payload: core.MBRUpdate{MBR: mbrs[lo+i]}}
				nodes[0].Send(ids[0], ids[1], msg)
			}
		})
		sent += k
		for {
			puts, _ := target.Store().Stats()
			if puts-basePuts >= int64(sent) {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	puts, _ := target.Store().Stats()
	return puts - basePuts, time.Since(start), nil
}
