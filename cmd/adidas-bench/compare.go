package main

// Benchstat-style comparison of two JSON reports:
//
//	adidas-bench -compare old.json,new.json
//	adidas-bench -compare BENCH_3.json,BENCH_4.json -minratio store-match@4=1.3
//
// Both the -bench schema (streamdex-bench/*) and the -parallel schema
// (streamdex-parbench/*) are supported; the pair must share one. For
// -bench reports, benchmarks are matched by name and the table shows
// ns/op, allocs/op and events/sec side by side with the relative delta.
// For -parallel reports, rows are matched by (name, gomaxprocs) and
// compared on ops/sec. The comparison is informational — unless -minratio
// names rows that must not regress (see runCompareParallel) — but it
// refuses to compare reports from different schemas or fast/full modes,
// where the deltas would be meaningless.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func runCompare(spec, minRatio string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants OLD.json,NEW.json")
	}
	if isParbench(parts[0]) || isParbench(parts[1]) {
		return runCompareParallel(parts[0], parts[1], minRatio)
	}
	if minRatio != "" {
		return fmt.Errorf("-minratio applies to -parallel reports (streamdex-parbench/*) only")
	}
	oldRep, err := loadReport(parts[0])
	if err != nil {
		return err
	}
	newRep, err := loadReport(parts[1])
	if err != nil {
		return err
	}
	if oldRep.Schema != newRep.Schema {
		return fmt.Errorf("schema mismatch: %s vs %s", oldRep.Schema, newRep.Schema)
	}
	if oldRep.Fast != newRep.Fast {
		return fmt.Errorf("fast/full mismatch: old fast=%v, new fast=%v — rerun with matching BENCH_FAST", oldRep.Fast, newRep.Fast)
	}

	oldBy := make(map[string]benchResult, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Printf("%-24s %14s %14s %9s   %14s %14s %9s\n",
		"name", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-24s %60s\n", nb.Name, "(new benchmark, no old row)")
			continue
		}
		delete(oldBy, nb.Name)
		fmt.Printf("%-24s %14.0f %14.0f %9s   %14d %14d %9s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta(ob.NsPerOp, nb.NsPerOp),
			ob.AllocsPerOp, nb.AllocsPerOp,
			delta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp)))
		if ob.EventsPerSec > 0 && nb.EventsPerSec > 0 {
			fmt.Printf("%-24s %14.0f %14.0f %9s   (events/sec, higher is better)\n",
				"", ob.EventsPerSec, nb.EventsPerSec, delta(ob.EventsPerSec, nb.EventsPerSec))
		}
	}
	for name := range oldBy {
		fmt.Printf("%-24s %60s\n", name, "(removed benchmark, no new row)")
	}
	return nil
}

func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "~"
		}
		return "+inf"
	}
	d := (new - old) / old * 100
	if d > -0.005 && d < 0.005 {
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", d)
}

func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "streamdex-bench/") {
		return nil, fmt.Errorf("%s: schema %q is not a -bench report", path, rep.Schema)
	}
	return &rep, nil
}

// isParbench sniffs a report's schema without failing on read errors —
// those surface later with proper context.
func isParbench(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if json.Unmarshal(data, &probe) != nil {
		return false
	}
	return strings.HasPrefix(probe.Schema, "streamdex-parbench/")
}

func loadParReport(path string) (*parReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep parReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "streamdex-parbench/") {
		return nil, fmt.Errorf("%s: schema %q is not a -parallel report", path, rep.Schema)
	}
	return &rep, nil
}

// ratioGate is one parsed -minratio term: the row name@procs must reach
// ratio times its old ops/sec.
type ratioGate struct {
	name  string
	procs int
	ratio float64
}

// parseMinRatio parses "name@procs=ratio[,name@procs=ratio...]", e.g.
// "store-match@4=1.3".
func parseMinRatio(spec string) ([]ratioGate, error) {
	if spec == "" {
		return nil, nil
	}
	var gates []ratioGate
	for _, term := range strings.Split(spec, ",") {
		at := strings.Index(term, "@")
		eq := strings.LastIndex(term, "=")
		if at <= 0 || eq <= at+1 {
			return nil, fmt.Errorf("-minratio term %q: want name@procs=ratio", term)
		}
		procs, err := strconv.Atoi(term[at+1 : eq])
		if err != nil || procs < 1 {
			return nil, fmt.Errorf("-minratio term %q: bad procs %q", term, term[at+1:eq])
		}
		ratio, err := strconv.ParseFloat(term[eq+1:], 64)
		if err != nil || ratio <= 0 {
			return nil, fmt.Errorf("-minratio term %q: bad ratio %q", term, term[eq+1:])
		}
		gates = append(gates, ratioGate{name: term[:at], procs: procs, ratio: ratio})
	}
	return gates, nil
}

// runCompareParallel diffs two -parallel reports row by row, keyed on
// (name, gomaxprocs) and compared on ops/sec. -minratio gates fail the
// process when new/old falls short — but only where the row's proc count
// maps to real cores in both reports; an oversubscribed host measures
// honestly yet cannot speed up, so its gates stand down (and say so),
// mirroring -parallel's own -minspeedup behavior.
func runCompareParallel(oldPath, newPath, minRatio string) error {
	gates, err := parseMinRatio(minRatio)
	if err != nil {
		return err
	}
	oldRep, err := loadParReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadParReport(newPath)
	if err != nil {
		return err
	}
	if oldRep.Schema != newRep.Schema {
		return fmt.Errorf("schema mismatch: %s vs %s", oldRep.Schema, newRep.Schema)
	}
	if oldRep.Fast != newRep.Fast {
		return fmt.Errorf("fast/full mismatch: old fast=%v, new fast=%v — rerun with matching BENCH_FAST", oldRep.Fast, newRep.Fast)
	}

	type rowKey struct {
		name  string
		procs int
	}
	oldBy := make(map[rowKey]parRow, len(oldRep.Parallelism.Rows))
	for _, r := range oldRep.Parallelism.Rows {
		oldBy[rowKey{r.Name, r.GOMAXPROCS}] = r
	}

	fmt.Printf("%-14s %6s %14s %14s %9s\n", "name", "procs", "old ops/sec", "new ops/sec", "delta")
	newBy := make(map[rowKey]parRow, len(newRep.Parallelism.Rows))
	for _, nr := range newRep.Parallelism.Rows {
		k := rowKey{nr.Name, nr.GOMAXPROCS}
		newBy[k] = nr
		or, ok := oldBy[k]
		if !ok {
			fmt.Printf("%-14s %6d %40s\n", nr.Name, nr.GOMAXPROCS, "(new row, no old measurement)")
			continue
		}
		delete(oldBy, k)
		fmt.Printf("%-14s %6d %14.0f %14.0f %9s\n",
			nr.Name, nr.GOMAXPROCS, or.OpsPerSec, nr.OpsPerSec, delta(or.OpsPerSec, nr.OpsPerSec))
	}
	for k := range oldBy {
		fmt.Printf("%-14s %6d %40s\n", k.name, k.procs, "(removed row, no new measurement)")
	}
	if newRep.Headline != nil {
		fmt.Printf("headline: %.0f points/sec/node (%s)\n",
			newRep.Headline.PointsPerSecPerNode, newRep.Headline.Basis)
	}

	for _, g := range gates {
		if oldRep.CPUs < g.procs || newRep.CPUs < g.procs {
			fmt.Printf("minratio %s@%d=%.2f not enforced: host cores (old %d, new %d) below %d procs\n",
				g.name, g.procs, g.ratio, oldRep.CPUs, newRep.CPUs, g.procs)
			continue
		}
		k := rowKey{g.name, g.procs}
		// oldBy had its matched rows deleted while printing; search the
		// report directly for the gated row.
		var or parRow
		okOld := false
		for _, r := range oldRep.Parallelism.Rows {
			if r.Name == g.name && r.GOMAXPROCS == g.procs {
				or, okOld = r, true
				break
			}
		}
		nr, okNew := newBy[k]
		if !okOld || !okNew {
			return fmt.Errorf("minratio %s@%d: row missing (old %v, new %v)", g.name, g.procs, okOld, okNew)
		}
		if or.OpsPerSec <= 0 {
			return fmt.Errorf("minratio %s@%d: old ops/sec is %v", g.name, g.procs, or.OpsPerSec)
		}
		if got := nr.OpsPerSec / or.OpsPerSec; got < g.ratio {
			return fmt.Errorf("%s@gomaxprocs=%d is %.2fx the old report, below the %.2fx floor",
				g.name, g.procs, got, g.ratio)
		}
	}
	return nil
}
