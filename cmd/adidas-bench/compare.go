package main

// Benchstat-style comparison of two -bench JSON reports:
//
//	adidas-bench -compare old.json,new.json
//
// Benchmarks are matched by name; the table shows ns/op, allocs/op and
// events/sec side by side with the relative delta. The comparison is
// informational — it never fails the process over a regression — but it
// refuses to compare reports from different schemas or fast/full modes,
// where the deltas would be meaningless.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func runCompare(spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants OLD.json,NEW.json")
	}
	oldRep, err := loadReport(parts[0])
	if err != nil {
		return err
	}
	newRep, err := loadReport(parts[1])
	if err != nil {
		return err
	}
	if oldRep.Schema != newRep.Schema {
		return fmt.Errorf("schema mismatch: %s vs %s", oldRep.Schema, newRep.Schema)
	}
	if oldRep.Fast != newRep.Fast {
		return fmt.Errorf("fast/full mismatch: old fast=%v, new fast=%v — rerun with matching BENCH_FAST", oldRep.Fast, newRep.Fast)
	}

	oldBy := make(map[string]benchResult, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Printf("%-24s %14s %14s %9s   %14s %14s %9s\n",
		"name", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-24s %60s\n", nb.Name, "(new benchmark, no old row)")
			continue
		}
		delete(oldBy, nb.Name)
		fmt.Printf("%-24s %14.0f %14.0f %9s   %14d %14d %9s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta(ob.NsPerOp, nb.NsPerOp),
			ob.AllocsPerOp, nb.AllocsPerOp,
			delta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp)))
		if ob.EventsPerSec > 0 && nb.EventsPerSec > 0 {
			fmt.Printf("%-24s %14.0f %14.0f %9s   (events/sec, higher is better)\n",
				"", ob.EventsPerSec, nb.EventsPerSec, delta(ob.EventsPerSec, nb.EventsPerSec))
		}
	}
	for name := range oldBy {
		fmt.Printf("%-24s %60s\n", name, "(removed benchmark, no new row)")
	}
	return nil
}

func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "~"
		}
		return "+inf"
	}
	d := (new - old) / old * 100
	if d > -0.005 && d < 0.005 {
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", d)
}

func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "streamdex-bench/") {
		return nil, fmt.Errorf("%s: schema %q is not a -bench report", path, rep.Schema)
	}
	return &rep, nil
}
