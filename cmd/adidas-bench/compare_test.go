package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMinRatio(t *testing.T) {
	gates, err := parseMinRatio("store-match@4=1.3,loopback-mbr@8=1.1")
	if err != nil {
		t.Fatal(err)
	}
	want := []ratioGate{
		{name: "store-match", procs: 4, ratio: 1.3},
		{name: "loopback-mbr", procs: 8, ratio: 1.1},
	}
	if len(gates) != len(want) {
		t.Fatalf("gates = %v", gates)
	}
	for i := range want {
		if gates[i] != want[i] {
			t.Fatalf("gate %d = %+v, want %+v", i, gates[i], want[i])
		}
	}
	if g, err := parseMinRatio(""); err != nil || g != nil {
		t.Fatalf("empty spec: %v, %v", g, err)
	}
	for _, bad := range []string{"store-match", "a@b=1", "a@4=", "a@4=-1", "@4=1.3", "a@0=1.3"} {
		if _, err := parseMinRatio(bad); err == nil {
			t.Errorf("parseMinRatio(%q) accepted", bad)
		}
	}
}

// writeParReport drops a minimal parbench report to disk for compare tests.
func writeParReport(t *testing.T, dir, name string, cpus int, matchOpsPerSec float64) string {
	t.Helper()
	rep := parReport{
		Schema: "streamdex-parbench/1",
		CPUs:   cpus,
		Parallelism: parSection{
			Procs: []int{1, 4},
			Rows: []parRow{
				{Name: "store-match", GOMAXPROCS: 1, Ops: 100, OpsPerSec: 1000},
				{Name: "store-match", GOMAXPROCS: 4, Ops: 100, OpsPerSec: matchOpsPerSec},
			},
			Speedups: map[string]float64{},
		},
	}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareParallelMinRatio(t *testing.T) {
	dir := t.TempDir()

	// Gate satisfied: 4-core reports, new is 1.5x old on store-match@4.
	oldOK := writeParReport(t, dir, "old-ok.json", 4, 2000)
	newOK := writeParReport(t, dir, "new-ok.json", 4, 3000)
	if err := runCompareParallel(oldOK, newOK, "store-match@4=1.3"); err != nil {
		t.Fatalf("passing gate failed: %v", err)
	}

	// Gate violated: new is only 1.1x old.
	newSlow := writeParReport(t, dir, "new-slow.json", 4, 2200)
	err := runCompareParallel(oldOK, newSlow, "store-match@4=1.3")
	if err == nil || !strings.Contains(err.Error(), "below the 1.30x floor") {
		t.Fatalf("regressed gate: err = %v", err)
	}

	// Stand-down: a 1-core host cannot speed up at 4 procs, so the same
	// regressed numbers pass with the gate explicitly not enforced.
	old1 := writeParReport(t, dir, "old-1core.json", 1, 2000)
	new1 := writeParReport(t, dir, "new-1core.json", 1, 2200)
	if err := runCompareParallel(old1, new1, "store-match@4=1.3"); err != nil {
		t.Fatalf("1-core stand-down failed: %v", err)
	}

	// Unknown row in the gate is an error, not a silent pass.
	if err := runCompareParallel(oldOK, newOK, "no-such-row@4=1.3"); err == nil {
		t.Fatal("gate on a missing row accepted")
	}
}

func TestCompareDispatchBySchema(t *testing.T) {
	dir := t.TempDir()
	oldP := writeParReport(t, dir, "o.json", 4, 2000)
	newP := writeParReport(t, dir, "n.json", 4, 3000)
	// runCompare must route parbench reports to the parallel path, where
	// -minratio is legal.
	if err := runCompare(oldP+","+newP, "store-match@4=1.3"); err != nil {
		t.Fatal(err)
	}
	// ...and reject -minratio for plain -bench comparisons.
	if err := runCompare("a.json,b.json", "store-match@4=1.3"); err == nil ||
		!strings.Contains(err.Error(), "-minratio") {
		t.Fatalf("want -minratio rejection, got %v", err)
	}
}
