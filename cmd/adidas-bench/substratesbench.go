package main

// Routing-substrate benchmark mode. `adidas-bench -substrates out.json`
// runs the head-to-head comparison of the registered ring machines —
// Chord's finger routing against Koorde's de Bruijn walk — on the same
// simulated substrate at each paper size, and writes the rows in the
// streamdex-parbench schema (the committed BENCH_7.json at the repo
// root). The report repeats the store-match/store-ingest rows of
// -parallel/-ops/-loadskew, so `-compare BENCH_6.json,BENCH_7.json`
// proves the substrate-neutral control-plane refactor did not tax the
// data plane, and carries the per-machine rows in a "substrates" section.
//
// `-maxhopsratio X` turns the largest-size row pair into a hard gate: the
// run fails unless Koorde's mean lookup hops are strictly below X times
// Chord's. With X = 1 that is the de Bruijn claim itself — fewer lookup
// forwards at the paper's largest size, from less routing state (18
// pointers vs. 32 fingers). The simulation is deterministic for a fixed
// -seed, so the gate is reproducible, not a coin flip. BENCH_FAST=1
// shrinks the sweep to the two boundary sizes for smoke runs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamdex/internal/experiments"
)

// substrateJSONRow is one (size, machine) row of the substrates section.
type substrateJSONRow struct {
	Nodes          int     `json:"nodes"`
	Machine        string  `json:"machine"`
	Lookups        int     `json:"lookups"`
	LookupMeanHops float64 `json:"lookup_mean_hops"`
	LookupP99Hops  float64 `json:"lookup_p99_hops"`
	Longlinks      float64 `json:"longlinks_per_node"`
	MaintBytes     float64 `json:"maint_bytes_per_node_sec"`
	MulticastMsgs  float64 `json:"multicast_msgs"`
	MulticastLast  float64 `json:"multicast_last_ms"`
	ChurnBytes     float64 `json:"churn_repair_bytes_per_node_sec,omitempty"`
	ChurnLookupOK  float64 `json:"churn_lookup_ok,omitempty"`
}

// substratesSection is the head-to-head extension of the parbench report.
type substratesSection struct {
	Machines []string           `json:"machines"`
	Rows     []substrateJSONRow `json:"rows"`
}

func runSubstratesBench(outPath string, seed int64, maxHopsRatio, maxMaintRatio, maxTailRatio float64, workers int) error {
	if outPath != "-" {
		f, err := os.OpenFile(outPath, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		f.Close()
	}
	fast := os.Getenv("BENCH_FAST") != ""
	sc := parScale{preload: 20000, walks: 50000, puts: 200000, shards: 16}
	sizes := experiments.PaperSizes
	if fast {
		sc = parScale{preload: 2000, walks: 5000, puts: 20000, shards: 16}
		// Keep the largest size: it is where the hops gate judges.
		sizes = []int{50, 500}
	}

	procs := []int{1, 4, 8}
	rep := parReport{
		Schema:    "streamdex-parbench/1",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Fast:      fast,
		Seed:      seed,
		Parallelism: parSection{
			Procs:    procs,
			Speedups: make(map[string]float64),
		},
	}
	if rep.CPUs < procs[len(procs)-1] {
		rep.Parallelism.Note = fmt.Sprintf(
			"host has %d CPU(s): rows above gomaxprocs=%d share cores, so their speedup cannot exceed 1",
			rep.CPUs, rep.CPUs)
	}

	// The shared store rows: identical harness to -parallel/-ops/-loadskew,
	// so the BENCH_6 vs BENCH_7 compare floor judges the refactor on the
	// same similarity path.
	perProc := make(map[string]map[int]float64)
	record := func(name string, p int, ops int64, elapsed time.Duration) {
		r := parRow{Name: name, GOMAXPROCS: p, Ops: ops}
		if ops > 0 {
			r.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
		}
		if s := elapsed.Seconds(); s > 0 {
			r.OpsPerSec = float64(ops) / s
		}
		rep.Parallelism.Rows = append(rep.Parallelism.Rows, r)
		if perProc[name] == nil {
			perProc[name] = make(map[int]float64)
		}
		perProc[name][p] = r.OpsPerSec
		fmt.Fprintf(os.Stderr, "%-14s gomaxprocs=%d %12.0f ns/op %12.0f ops/sec\n",
			name, p, r.NsPerOp, r.OpsPerSec)
	}
	for _, p := range procs {
		prev := runtime.GOMAXPROCS(p)
		ops, el := benchStoreMatch(sc, p, seed)
		record("store-match", p, ops, el)
		ops, el = benchStoreIngest(sc, p, seed)
		record("store-ingest", p, ops, el)
		runtime.GOMAXPROCS(prev)
	}
	last := procs[0]
	for _, p := range procs {
		if p <= rep.CPUs && p > last {
			last = p
		}
	}
	for name, by := range perProc {
		if b0 := by[procs[0]]; b0 > 0 {
			rep.Parallelism.Speedups[name] = by[last] / b0
		}
	}

	// The head-to-head sweep itself.
	rows, err := experiments.HeadToHead(sizes, seed, 0, workers)
	if err != nil {
		return err
	}
	sec := &substratesSection{Machines: experiments.HeadToHeadMachines}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, substrateJSONRow{
			Nodes: r.Nodes, Machine: r.Machine, Lookups: r.Lookups,
			LookupMeanHops: r.LookupMeanHops, LookupP99Hops: r.LookupP99Hops,
			Longlinks: r.Longlinks, MaintBytes: r.MaintBytesPerNodeSec,
			MulticastMsgs: r.MulticastMsgs, MulticastLast: r.MulticastLastMs,
			ChurnBytes: r.ChurnRepairBytesPerNodeSec, ChurnLookupOK: r.ChurnLookupOK,
		})
		fmt.Fprintf(os.Stderr,
			"substrates %4d nodes %-6s hops=%.2f p99=%.0f longlinks=%.0f maint=%.0fB/node/s mcast last=%.0fms churn=%.0fB/node/s ok=%.3f\n",
			r.Nodes, r.Machine, r.LookupMeanHops, r.LookupP99Hops, r.Longlinks,
			r.MaintBytesPerNodeSec, r.MulticastLastMs, r.ChurnRepairBytesPerNodeSec, r.ChurnLookupOK)
	}
	rep.Substrates = sec

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}

	// The hard gates all judge the largest-size row pair: Koorde against
	// Chord on the same substrate at the paper's biggest ring.
	largest := sizes[len(sizes)-1]
	pair := func(gate string, get func(substrateJSONRow) float64) (chordV, koordeV float64, err error) {
		found := 0
		for _, r := range sec.Rows {
			if r.Nodes != largest {
				continue
			}
			switch r.Machine {
			case "chord":
				chordV, found = get(r), found+1
			case "koorde":
				koordeV, found = get(r), found+1
			}
		}
		if found != 2 {
			return 0, 0, fmt.Errorf("%s: no chord/koorde row pair at %d nodes", gate, largest)
		}
		if chordV <= 0 {
			return 0, 0, fmt.Errorf("%s: chord value is %v at %d nodes", gate, chordV, largest)
		}
		return chordV, koordeV, nil
	}

	// -maxhopsratio: Koorde's mean lookup hops must be strictly below the
	// ceiling times Chord's — the de Bruijn claim itself.
	if maxHopsRatio > 0 {
		chordMean, koordeMean, err := pair("maxhopsratio", func(r substrateJSONRow) float64 { return r.LookupMeanHops })
		if err != nil {
			return err
		}
		if ratio := koordeMean / chordMean; ratio >= maxHopsRatio {
			return fmt.Errorf("koorde mean lookup hops %.3f at %d nodes is %.3fx chord's %.3f, not below the %.2fx ceiling",
				koordeMean, largest, ratio, chordMean, maxHopsRatio)
		}
		fmt.Fprintf(os.Stderr, "maxhopsratio ok: koorde %.3f < chord %.3f mean hops at %d nodes (%.3fx < %.2fx)\n",
			koordeMean, chordMean, largest, koordeMean/chordMean, maxHopsRatio)
	}

	// -maxmaintratio: with piggybacked pointer repair, Koorde's steady-state
	// maintenance bandwidth must stay within the ceiling times Chord's.
	if maxMaintRatio > 0 {
		chordB, koordeB, err := pair("maxmaintratio", func(r substrateJSONRow) float64 { return r.MaintBytes })
		if err != nil {
			return err
		}
		if ratio := koordeB / chordB; ratio > maxMaintRatio {
			return fmt.Errorf("koorde maintenance %.1f B/node/s at %d nodes is %.3fx chord's %.1f, above the %.2fx ceiling",
				koordeB, largest, ratio, chordB, maxMaintRatio)
		}
		fmt.Fprintf(os.Stderr, "maxmaintratio ok: koorde %.1f vs chord %.1f B/node/s at %d nodes (%.3fx <= %.2fx)\n",
			koordeB, chordB, largest, koordeB/chordB, maxMaintRatio)
	}

	// -maxtailratio: with de Bruijn-aware arc splits, Koorde's tree-mode
	// multicast must reach its last delivery within the ceiling times
	// Chord's time.
	if maxTailRatio > 0 {
		chordMs, koordeMs, err := pair("maxtailratio", func(r substrateJSONRow) float64 { return r.MulticastLast })
		if err != nil {
			return err
		}
		if ratio := koordeMs / chordMs; ratio > maxTailRatio {
			return fmt.Errorf("koorde multicast tail %.1f ms at %d nodes is %.3fx chord's %.1f, above the %.2fx ceiling",
				koordeMs, largest, ratio, chordMs, maxTailRatio)
		}
		fmt.Fprintf(os.Stderr, "maxtailratio ok: koorde %.1f vs chord %.1f ms at %d nodes (%.3fx <= %.2fx)\n",
			koordeMs, chordMs, largest, koordeMs/chordMs, maxTailRatio)
	}
	return nil
}
