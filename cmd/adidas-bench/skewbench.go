package main

// Load-skew benchmark mode. `adidas-bench -loadskew out.json` runs the
// Zipf(1.1) worst-case workload at each paper size, with the balancing
// machinery (virtual nodes + covering-range replication with read
// fan-out) off and on, and writes the per-physical-node load spread as
// JSON in the streamdex-parbench schema (the committed BENCH_6.json at
// the repo root). The report repeats the store-match/store-ingest rows of
// -parallel/-ops, so `-compare BENCH_5.json,BENCH_6.json` proves the
// replication hooks did not tax the similarity path, and carries the skew
// rows in a "loadskew" section the compare prints alongside.
//
// `-maxskew X` turns the smallest-size machinery-on row into a hard gate:
// the run fails unless its p99/mean load ratio is at most X (and the
// machinery actually helped, i.e. the on-ratio does not exceed the
// off-ratio). BENCH_FAST=1 shrinks the sweep to the 50-node tier with a
// short measurement interval for smoke runs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamdex/internal/experiments"
	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

// skewJSONRow is one per-size, per-arm row of the loadskew section.
type skewJSONRow struct {
	Nodes    int     `json:"nodes"`
	VNodes   int     `json:"vnodes"`
	Replicas int     `json:"replicas"`
	Mean     float64 `json:"mean"`
	P99      float64 `json:"p99"`
	Max      float64 `json:"max"`
	Gini     float64 `json:"gini"`
	Ratio    float64 `json:"p99_over_mean"`
}

// skewSection is the loadskew extension of the parbench report.
type skewSection struct {
	Zipf float64       `json:"zipf"`
	Rows []skewJSONRow `json:"rows"`
}

func runSkewBench(outPath string, seed int64, maxSkew float64, workers int) error {
	if outPath != "-" {
		f, err := os.OpenFile(outPath, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		f.Close()
	}
	fast := os.Getenv("BENCH_FAST") != ""
	sc := parScale{preload: 20000, walks: 50000, puts: 200000, shards: 16}
	sizes := experiments.PaperSizes
	base := workload.DefaultConfig(0)
	base.Seed = seed
	if fast {
		sc = parScale{preload: 2000, walks: 5000, puts: 20000, shards: 16}
		sizes = []int{50}
		base.Measure = 30 * sim.Second
	}

	procs := []int{1, 4, 8}
	rep := parReport{
		Schema:    "streamdex-parbench/1",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Fast:      fast,
		Seed:      seed,
		Parallelism: parSection{
			Procs:    procs,
			Speedups: make(map[string]float64),
		},
	}
	if rep.CPUs < procs[len(procs)-1] {
		rep.Parallelism.Note = fmt.Sprintf(
			"host has %d CPU(s): rows above gomaxprocs=%d share cores, so their speedup cannot exceed 1",
			rep.CPUs, rep.CPUs)
	}

	// The shared store rows: identical harness to -parallel/-ops, so the
	// BENCH_5 vs BENCH_6 compare floor judges the replication hooks on the
	// same similarity path.
	perProc := make(map[string]map[int]float64)
	record := func(name string, p int, ops int64, elapsed time.Duration) {
		r := parRow{Name: name, GOMAXPROCS: p, Ops: ops}
		if ops > 0 {
			r.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
		}
		if s := elapsed.Seconds(); s > 0 {
			r.OpsPerSec = float64(ops) / s
		}
		rep.Parallelism.Rows = append(rep.Parallelism.Rows, r)
		if perProc[name] == nil {
			perProc[name] = make(map[int]float64)
		}
		perProc[name][p] = r.OpsPerSec
		fmt.Fprintf(os.Stderr, "%-14s gomaxprocs=%d %12.0f ns/op %12.0f ops/sec\n",
			name, p, r.NsPerOp, r.OpsPerSec)
	}
	for _, p := range procs {
		prev := runtime.GOMAXPROCS(p)
		ops, el := benchStoreMatch(sc, p, seed)
		record("store-match", p, ops, el)
		ops, el = benchStoreIngest(sc, p, seed)
		record("store-ingest", p, ops, el)
		runtime.GOMAXPROCS(prev)
	}
	last := procs[0]
	for _, p := range procs {
		if p <= rep.CPUs && p > last {
			last = p
		}
	}
	for name, by := range perProc {
		if b0 := by[procs[0]]; b0 > 0 {
			rep.Parallelism.Speedups[name] = by[last] / b0
		}
	}

	// The skew sweep itself: off/on row pairs per size.
	rows, err := experiments.LoadSkew(sizes, base, experiments.DefaultSkew, workers)
	if err != nil {
		return err
	}
	sec := &skewSection{Zipf: experiments.DefaultSkew}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, skewJSONRow{
			Nodes: r.Nodes, VNodes: r.VNodes, Replicas: r.Replicas,
			Mean: r.Mean, P99: r.P99, Max: r.Max, Gini: r.Gini, Ratio: r.Ratio,
		})
		arm := "off"
		if r.Replicas > 1 {
			arm = "on"
		}
		fmt.Fprintf(os.Stderr, "loadskew %4d nodes %-3s mean=%.2f p99=%.2f max=%.2f gini=%.3f p99/mean=%.2f\n",
			r.Nodes, arm, r.Mean, r.P99, r.Max, r.Gini, r.Ratio)
	}
	rep.Skew = sec

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}

	// The hard gate: at the smallest size, the machinery-on arm must hold
	// the p99/mean ratio under the ceiling and must not be worse than the
	// plain ring.
	if maxSkew > 0 {
		var off, on *skewJSONRow
		for i := range sec.Rows {
			r := &sec.Rows[i]
			if r.Nodes != sizes[0] {
				continue
			}
			if r.Replicas > 1 {
				on = r
			} else {
				off = r
			}
		}
		if on == nil || off == nil {
			return fmt.Errorf("maxskew: no off/on row pair at %d nodes", sizes[0])
		}
		if on.Ratio > maxSkew {
			return fmt.Errorf("p99/mean load ratio %.2f at %d nodes (vnodes=%d replicas=%d) exceeds the %.2f ceiling",
				on.Ratio, on.Nodes, on.VNodes, on.Replicas, maxSkew)
		}
		if off.Ratio > 0 && on.Ratio > off.Ratio {
			return fmt.Errorf("balancing made skew worse at %d nodes: p99/mean %.2f on vs %.2f off",
				sizes[0], on.Ratio, off.Ratio)
		}
		fmt.Fprintf(os.Stderr, "maxskew ok: p99/mean %.2f <= %.2f at %d nodes (off arm: %.2f)\n",
			on.Ratio, maxSkew, sizes[0], off.Ratio)
	}
	return nil
}
