package main

// Parallelism benchmark mode. `adidas-bench -parallel out.json` measures the
// live node's concurrent data plane — the lock-free snapshot store and the
// transport worker pool — at GOMAXPROCS 1, 4 and 8 and writes the rows plus
// the derived speedups as JSON (the committed BENCH_3.json/BENCH_4.json at
// the repo root). Four workloads:
//
//	store-match   parallel candidate walks over a preloaded sharded store
//	store-ingest  parallel sorted inserts into the sharded store
//	loopback-mbr  end-to-end MBR publishes between two real TCP nodes, the
//	              receiver matching each against live similarity
//	              subscriptions on its data-plane workers
//	loopback-udp  the same pump with the UDP datagram plane enabled: MBR
//	              publishes ride fire-and-forget datagrams (ops counts what
//	              the receiver actually indexed, so loss is visible)
//
// The report also derives the headline number: sustained points per second
// per node, which is the best loopback throughput times beta (each MBR
// publish summarizes beta stream points).
//
// Every row records the GOMAXPROCS it ran under and the report records the
// host's CPU count: on a single-core host the multi-proc rows are still
// measured honestly, they just cannot beat the 1-proc rows (the "note"
// field says so). BENCH_FAST=1 shrinks the operation counts for smoke runs.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
)

type parRow struct {
	Name       string  `json:"name"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Ops        int64   `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

type parSection struct {
	Procs    []int              `json:"procs"`
	Rows     []parRow           `json:"rows"`
	Speedups map[string]float64 `json:"speedups"`
	Note     string             `json:"note,omitempty"`
}

// parHeadline is the throughput claim the report backs: how many stream
// points per second one node sustains end to end.
type parHeadline struct {
	PointsPerSecPerNode float64 `json:"points_per_sec_per_node"`
	Beta                int     `json:"beta"`
	Basis               string  `json:"basis"`
}

type parReport struct {
	Schema      string       `json:"schema"`
	GoVersion   string       `json:"go_version"`
	CPUs        int          `json:"cpus"`
	Fast        bool         `json:"fast"`
	Seed        int64        `json:"seed"`
	Parallelism parSection   `json:"parallelism"`
	Headline    *parHeadline `json:"headline,omitempty"`
	// Skew carries the -loadskew rows; absent from -parallel/-ops reports.
	Skew *skewSection `json:"loadskew,omitempty"`
	// Substrates carries the -substrates head-to-head rows; absent from
	// the other report modes.
	Substrates *substratesSection `json:"substrates,omitempty"`
}

// parScale holds the operation counts of one -parallel run.
type parScale struct {
	preload  int // MBRs preloaded into the store before matching
	walks    int // candidate walks (store-match ops)
	puts     int // inserts (store-ingest ops)
	frames   int // published MBRs (loopback-mbr ops)
	queries  int // live subscriptions the loopback receiver matches against
	shards   int
	loopback bool
}

func runParallelBench(outPath string, seed int64, minSpeedup float64) error {
	if outPath != "-" {
		f, err := os.OpenFile(outPath, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		f.Close()
	}
	fast := os.Getenv("BENCH_FAST") != ""
	sc := parScale{preload: 20000, walks: 50000, puts: 200000, frames: 30000, queries: 32, shards: 16, loopback: true}
	if fast {
		sc = parScale{preload: 2000, walks: 5000, puts: 20000, frames: 4000, queries: 8, shards: 16, loopback: true}
	}

	procs := []int{1, 4, 8}
	rep := parReport{
		Schema:    "streamdex-parbench/1",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Fast:      fast,
		Seed:      seed,
		Parallelism: parSection{
			Procs:    procs,
			Speedups: make(map[string]float64),
		},
	}
	if rep.CPUs < procs[len(procs)-1] {
		rep.Parallelism.Note = fmt.Sprintf(
			"host has %d CPU(s): rows above gomaxprocs=%d share cores, so their speedup cannot exceed 1",
			rep.CPUs, rep.CPUs)
	}

	perProc := make(map[string]map[int]float64) // name -> procs -> ops/sec
	record := func(name string, p int, ops int64, elapsed time.Duration) {
		r := parRow{Name: name, GOMAXPROCS: p, Ops: ops}
		if ops > 0 {
			r.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
		}
		if s := elapsed.Seconds(); s > 0 {
			r.OpsPerSec = float64(ops) / s
		}
		rep.Parallelism.Rows = append(rep.Parallelism.Rows, r)
		if perProc[name] == nil {
			perProc[name] = make(map[int]float64)
		}
		perProc[name][p] = r.OpsPerSec
		fmt.Fprintf(os.Stderr, "%-14s gomaxprocs=%d %12.0f ns/op %12.0f ops/sec\n",
			name, p, r.NsPerOp, r.OpsPerSec)
	}

	for _, p := range procs {
		prev := runtime.GOMAXPROCS(p)
		ops, el := benchStoreMatch(sc, p, seed)
		record("store-match", p, ops, el)
		ops, el = benchStoreIngest(sc, p, seed)
		record("store-ingest", p, ops, el)
		if sc.loopback {
			for _, lb := range []struct {
				name string
				udp  bool
			}{{"loopback-mbr", false}, {"loopback-udp", true}} {
				ops, el, err := benchLoopbackMBR(sc, seed, lb.udp)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return fmt.Errorf("%s at gomaxprocs=%d: %w", lb.name, p, err)
				}
				record(lb.name, p, ops, el)
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	// Speedup is measured at the widest proc count that maps to real cores
	// (gomaxprocs beyond the host's CPUs only adds scheduling overhead, so
	// judging by the 8-proc row on a 4-core box would punish the code for
	// the hardware).
	last := procs[0]
	for _, p := range procs {
		if p <= rep.CPUs && p > last {
			last = p
		}
	}
	for name, by := range perProc {
		if base := by[procs[0]]; base > 0 {
			rep.Parallelism.Speedups[name] = by[last] / base
		}
	}

	// Headline: each MBR publish summarizes beta stream points, so the best
	// end-to-end loopback rate times beta is the points/sec one node
	// sustains.
	beta := core.DefaultConfig().Beta
	best, bestRow := 0.0, ""
	for _, r := range rep.Parallelism.Rows {
		if (r.Name == "loopback-mbr" || r.Name == "loopback-udp") && r.OpsPerSec > best {
			best, bestRow = r.OpsPerSec, fmt.Sprintf("%s@gomaxprocs=%d", r.Name, r.GOMAXPROCS)
		}
	}
	if best > 0 {
		rep.Headline = &parHeadline{
			PointsPerSecPerNode: best * float64(beta),
			Beta:                beta,
			Basis: fmt.Sprintf("%s × beta=%d (each MBR publish summarizes beta stream points)",
				bestRow, beta),
		}
		fmt.Fprintf(os.Stderr, "headline: %.0f points/sec/node (%s)\n",
			rep.Headline.PointsPerSecPerNode, rep.Headline.Basis)
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}

	// -minspeedup is only meaningful where the extra procs map to real
	// cores; an oversubscribed host records honest rows but cannot speed
	// up, so the gate stands down (and says so).
	if minSpeedup > 0 {
		if last == procs[0] {
			fmt.Fprintf(os.Stderr, "minspeedup %.2f not enforced: host has %d CPU(s), no multi-core row to judge\n", minSpeedup, rep.CPUs)
			return nil
		}
		for _, name := range []string{"store-match", "loopback-mbr"} {
			if s := rep.Parallelism.Speedups[name]; s < minSpeedup {
				return fmt.Errorf("%s speedup %.2fx at gomaxprocs=%d is below the %.2fx floor", name, s, last, minSpeedup)
			}
		}
	}
	return nil
}

// randomMBRs builds n MBRs with features spread over the normalized
// coefficient range, far-future expiries, and distinct (stream, seq) pairs.
func randomMBRs(n int, seed int64) []*summary.MBR {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*summary.MBR, n)
	for i := range out {
		f := summary.Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		b := summary.NewMBR(fmt.Sprintf("s%d", i%64), uint64(i), f)
		b.Extend(summary.Feature{f[0] + 0.01, f[1] + 0.01, f[2] + 0.01})
		b.Created = 0
		b.Expiry = sim.Time(1) << 60
		out[i] = b
	}
	return out
}

// benchStoreMatch preloads a sharded store and runs the candidate walks
// split over one goroutine per proc, each with its own reused scratch
// buffer — the worker pool's matching pattern.
func benchStoreMatch(sc parScale, workers int, seed int64) (int64, time.Duration) {
	st := core.NewShardedStore(sc.shards)
	for _, b := range randomMBRs(sc.preload, seed) {
		st.Put(b)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	queries := make([]summary.Feature, sc.walks)
	for i := range queries {
		queries[i] = summary.Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []query.Match
			for i := w; i < len(queries); i += workers {
				buf = st.AppendCandidates(buf[:0], queries[i], 0.1, 1, 1)
			}
		}(w)
	}
	wg.Wait()
	return int64(sc.walks), time.Since(start)
}

// benchStoreIngest times parallel sorted inserts, one goroutine per proc
// over pre-built MBRs.
func benchStoreIngest(sc parScale, workers int, seed int64) (int64, time.Duration) {
	mbrs := randomMBRs(sc.puts, seed+2)
	st := core.NewShardedStore(sc.shards)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(mbrs); i += workers {
				st.Put(mbrs[i])
			}
		}(w)
	}
	wg.Wait()
	return int64(sc.puts), time.Since(start)
}

// benchLoopbackMBR measures the end-to-end data plane: node A pumps MBR
// publishes at node B over real TCP (or, with udp set, as fire-and-forget
// datagrams); B's worker pool indexes each into the sharded store and
// matches it against live similarity subscriptions. The pool and shard
// count are sized from the GOMAXPROCS in effect at node construction, so
// the caller's runtime.GOMAXPROCS setting is the knob. Returned ops is
// what the receiver actually indexed — identical to the publish count on
// TCP, possibly lower on UDP where loss is the designed trade.
func benchLoopbackMBR(sc parScale, seed int64, udp bool) (int64, time.Duration, error) {
	space := dht.NewSpace(16)
	ids := []dht.Key{10_000, 40_000}
	nodes := make([]*transport.Node, len(ids))
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = space
		tc.StabilizeEvery = 50_000
		tc.FixFingersEvery = 50_000
		tc.QueueLen = 4096
		if udp {
			tc.UDP = true
			tc.DatagramKinds = []dht.Kind{core.KindMBR}
		}
		n, err := transport.New(tc)
		if err != nil {
			return 0, 0, err
		}
		defer n.Close()
		nodes[i] = n
	}
	nodes[0].Create()
	if err := nodes[1].Join(nodes[0].Addr(), 10*time.Second); err != nil {
		return 0, 0, err
	}
	if err := waitConverged(nodes); err != nil {
		return 0, 0, err
	}

	ccfg := core.DefaultConfig()
	ccfg.Space = space
	ccfg.StoreShards = sc.shards
	mws := make([]*core.Middleware, len(nodes))
	for i, n := range nodes {
		var err error
		n.Do(func() { mws[i], err = core.New(n, ccfg) })
		if err != nil {
			return 0, 0, err
		}
	}

	// Live subscriptions for the receiver to match against: similarity
	// queries with features across the space, radius wide enough that a
	// fair share of publishes are genuine candidates.
	rng := rand.New(rand.NewSource(seed + 3))
	for q := 0; q < sc.queries; q++ {
		f := summary.Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		var err error
		nodes[1].Do(func() {
			_, err = mws[1].PostSimilarity(ids[1], f, 0.2, sim.Time(1)<<50)
		})
		if err != nil {
			return 0, 0, err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		subs := 0
		for i := range nodes {
			subs += mws[i].DataCenter(ids[i]).SubCount()
		}
		if subs >= sc.queries {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("only %d of %d subscriptions registered", subs, sc.queries)
		}
		time.Sleep(time.Millisecond)
	}

	mbrs := randomMBRs(sc.frames, seed+4)
	target := mws[1].DataCenter(ids[1])
	basePuts, _ := target.Store().Stats()

	const chunk = 256
	sent := 0
	start := time.Now()
	for sent < len(mbrs) {
		k := min(chunk, len(mbrs)-sent)
		lo := sent
		nodes[0].Do(func() {
			for i := 0; i < k; i++ {
				msg := &dht.Message{Kind: core.KindMBR, Payload: core.MBRUpdate{MBR: mbrs[lo+i]}}
				nodes[0].Send(ids[0], ids[1], msg)
			}
		})
		sent += k
		// Backpressure: one chunk in flight at a time, so the bounded peer
		// queue cannot overflow into drops. On UDP a lost datagram would
		// stall the wait forever, so a stalled count (no progress for a
		// second) writes the chunk off as lost and moves on.
		lastPuts, stalled := int64(-1), time.Now()
		for {
			puts, _ := target.Store().Stats()
			if puts-basePuts >= int64(sent) {
				break
			}
			if puts != lastPuts {
				lastPuts, stalled = puts, time.Now()
			} else if udp && time.Since(stalled) > time.Second {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	puts, _ := target.Store().Stats()
	return puts - basePuts, time.Since(start), nil
}

// waitConverged blocks until the two-node ring has mutual successor and
// predecessor pointers.
func waitConverged(nodes []*transport.Node) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			info := n.Ring()
			if info.Pred == nil || len(info.SuccList) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ring did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
