package main

// Machine-readable benchmark mode. `adidas-bench -bench out.json` times the
// figure-generating pipelines with testing.Benchmark — the same work as the
// BenchmarkFig* functions in the repo root — and writes ns/op, allocs/op,
// bytes/op and simulated events/second per figure benchmark as JSON, for
// regression tracking and benchstat-style before/after comparisons (the
// committed BENCH_1.json at the repo root is built from two of these runs).
//
// The configuration mirrors bench_test.go: warm-up 20 s / measurement 60 s
// of virtual time at the paper's system sizes, shrunk under BENCH_FAST=1 to
// 10 s / 20 s at sizes {25, 50} so a smoke run finishes in seconds. Only
// -seed is honored from the shared flags, keeping JSON runs comparable with
// `go test -bench` output by construction.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"streamdex/internal/experiments"
	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

type benchResult struct {
	Name         string  `json:"name"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerOp  uint64  `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Extra carries b.ReportMetric values (e.g. the transport's
	// frames/write coalescing factor and frames/sec throughput).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// spec is one benchmark in the JSON report: a body for testing.Benchmark
// plus an optional events counter for events/sec derivation.
type spec struct {
	name   string
	events func() (uint64, error)
	body   func(b *testing.B)
}

type benchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Fast       bool          `json:"fast"`
	Sizes      []int         `json:"sizes"`
	WarmupSec  int           `json:"warmup_sec"`
	MeasureSec int           `json:"measure_sec"`
	Seed       int64         `json:"seed"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func runBenchJSON(outPath string, seed int64, workers int) error {
	// Fail on an unwritable destination before spending minutes
	// benchmarking, not after.
	if outPath != "-" {
		f, err := os.OpenFile(outPath, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		f.Close()
	}
	fast := os.Getenv("BENCH_FAST") != ""
	cfg := workload.DefaultConfig(0)
	cfg.Seed = seed
	cfg.Warmup = 20 * sim.Second
	cfg.Measure = 60 * sim.Second
	sizes := experiments.PaperSizes
	overheadSizes := experiments.OverheadSizes
	if fast {
		cfg.Warmup = 10 * sim.Second
		cfg.Measure = 20 * sim.Second
		sizes = []int{25, 50}
		overheadSizes = sizes
	}

	rep := benchReport{
		Schema:     "streamdex-bench/1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Fast:       fast,
		Sizes:      sizes,
		WarmupSec:  int(cfg.Warmup / sim.Second),
		MeasureSec: int(cfg.Measure / sim.Second),
		Seed:       seed,
	}

	// sweepEvents sums the simulator events behind one benchmark op, from
	// an extra un-timed sweep (deterministic, so identical to the timed
	// ones).
	sweepEvents := func(szs []int, c workload.Config) (uint64, error) {
		reps, err := experiments.Sweep(szs, c, workers)
		if err != nil {
			return 0, err
		}
		var n uint64
		for _, r := range reps {
			n += r.EngineEvents
		}
		return n, nil
	}

	t1cfg := cfg
	t1cfg.Nodes = 50
	r7cfg := cfg
	r7cfg.Radius = 0.1
	specs := []spec{
		{
			name:   "Table1Workload",
			events: func() (uint64, error) { return sweepEvents([]int{50}, t1cfg) },
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := workload.RunOnce(t1cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "Fig3bFourierLocality",
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = experiments.FourierLocality(128, 3, 20000, seed)
				}
			},
		},
		{
			name:   "Fig6aLoad",
			events: func() (uint64, error) { return sweepEvents(sizes, cfg) },
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.LoadVsNodes(sizes, cfg, workers); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name:   "Fig7aOverhead",
			events: func() (uint64, error) { return sweepEvents(overheadSizes, r7cfg) },
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Overhead(overheadSizes, cfg, 0.1, workers); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name:   "Fig8Hops",
			events: func() (uint64, error) { return sweepEvents(sizes, cfg) },
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Hops(sizes, cfg, workers); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
	specs = append(specs, codecBenchSpecs()...)

	for _, s := range specs {
		res := testing.Benchmark(s.body)
		br := benchResult{
			Name:        s.name,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if len(res.Extra) > 0 {
			br.Extra = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				br.Extra[k] = v
			}
		}
		if s.events != nil {
			ev, err := s.events()
			if err != nil {
				return fmt.Errorf("bench %s: %w", s.name, err)
			}
			br.EventsPerOp = ev
			if br.NsPerOp > 0 {
				br.EventsPerSec = float64(ev) / (br.NsPerOp * 1e-9)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, br)
		fmt.Fprintf(os.Stderr, "%-22s %14.0f ns/op %10d allocs/op %12.0f events/sec\n",
			s.name, br.NsPerOp, br.AllocsPerOp, br.EventsPerSec)
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}
