package main

// Wire-codec and live-transport benchmarks for the JSON report. These
// mirror the BenchmarkMarshal*/BenchmarkUnmarshal* pairs in internal/wire
// and BenchmarkLoopbackThroughput in internal/transport, but live here so
// `adidas-bench -bench` captures codec and socket performance in the same
// BENCH_*.json as the figure pipelines. The sample messages below are
// representative frames of all nine middleware payload kinds (test
// fixtures are not importable from a main package).

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/query"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
	"streamdex/internal/wire"
)

// codecSampleMessages returns one representative message per payload kind,
// with realistic field sizes (4-dim features, a couple of matches per
// notify item) so per-frame costs resemble the live data path.
func codecSampleMessages() []*dht.Message {
	mbr := summary.NewMBR("stream-42", 7, summary.Feature{0.11, -0.52, 0.33, 0.04})
	mbr.Extend(summary.Feature{0.18, -0.44, 0.29, -0.02})
	mbr.Created = 2_000_000
	mbr.Expiry = 62_000_000

	matches := []query.Match{
		{StreamID: "stream-42", Seq: 7, DistLB: 0.12, FoundAt: 3_000_000, Node: 9000},
		{StreamID: "stream-17", Seq: 31, DistLB: 0.27, FoundAt: 3_100_000, Node: 21000},
	}

	base := func(kind dht.Kind, payload any) *dht.Message {
		return &dht.Message{
			Kind:    kind,
			Key:     40_000,
			Src:     10_000,
			Hops:    2,
			SentAt:  5_000_000,
			Payload: payload,
		}
	}
	return []*dht.Message{
		base(core.KindMBR, core.MBRUpdate{MBR: mbr}),
		base(core.KindQuery, core.SimQuery{
			Q: &query.Similarity{
				ID:       3,
				Origin:   10_000,
				Feature:  summary.Feature{0.0, 0.1, -0.1, 0.2},
				Radius:   0.3,
				Norm:     dsp.ZNorm,
				Posted:   2_000_000,
				Lifespan: 60_000_000,
			},
			MiddleKey: 33_000,
		}),
		base(core.KindNotify, core.NotifyBatch{Items: []core.NotifyItem{{
			QueryID:   3,
			MiddleKey: 33_000,
			ClientKey: 10_000,
			Expiry:    62_000_000,
			Matches:   matches,
		}}}),
		base(core.KindResponse, core.ResponseMsg{QueryID: 3, Matches: matches}),
		base(core.KindLocPut, core.LocPut{StreamID: "stream-42", Source: 9000}),
		base(core.KindLocGet, core.LocGet{StreamID: "stream-42", Requester: 10_000}),
		base(core.KindLocReply, core.LocReply{StreamID: "stream-42", Source: 9000, Found: true}),
		base(core.KindIPSub, core.IPSub{Q: &query.InnerProduct{
			ID:       4,
			Origin:   10_000,
			StreamID: "stream-42",
			Index:    []int{0, 3, 7, 12},
			Weights:  []float64{0.5, -0.25, 0.125, 1.0},
			Posted:   2_000_000,
			Lifespan: 60_000_000,
		}}),
		base(core.KindIPResp, core.IPResp{QueryID: 4, Value: query.IPValue{
			Value: 1.75, At: 4_000_000, Approx: true,
		}}),
	}
}

// gobPayloadBox mirrors the gob fallback's interface-typed payload box,
// reproducing the retired PR 2 payload path for the baseline benchmarks.
type gobPayloadBox struct {
	P any
}

// codecBenchSpecs returns the codec comparison benchmarks: packed codec v2
// versus the per-message gob baseline, both directions.
func codecBenchSpecs() []spec {
	msgs := codecSampleMessages()
	return []spec{
		{
			name: "WireMarshalPacked",
			body: func(b *testing.B) {
				dst := make([]byte, 0, 4096)
				for i := 0; i < b.N; i++ {
					for _, msg := range msgs {
						var err error
						dst, err = wire.AppendMarshal(dst[:0], msg)
						if err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			name: "WireMarshalGob",
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, msg := range msgs {
						var buf bytes.Buffer
						buf.Grow(wire.HeaderBytes + 64)
						buf.Write(make([]byte, wire.HeaderBytes))
						if err := gob.NewEncoder(&buf).Encode(gobPayloadBox{P: msg.Payload}); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			name: "WireUnmarshalPacked",
			body: func(b *testing.B) {
				var frames [][]byte
				for _, msg := range msgs {
					frame, err := wire.Marshal(msg)
					if err != nil {
						b.Fatal(err)
					}
					frames = append(frames, frame)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, frame := range frames {
						if _, err := wire.Unmarshal(frame); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			name: "WireUnmarshalGob",
			body: func(b *testing.B) {
				var bodies [][]byte
				for _, msg := range msgs {
					var buf bytes.Buffer
					if err := gob.NewEncoder(&buf).Encode(gobPayloadBox{P: msg.Payload}); err != nil {
						b.Fatal(err)
					}
					bodies = append(bodies, buf.Bytes())
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, body := range bodies {
						var box gobPayloadBox
						if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&box); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			name: "LoopbackThroughput",
			body: benchLoopbackThroughput,
		},
	}
}

// benchLoopbackThroughput boots a two-node TCP cluster on 127.0.0.1 and
// pumps MBR updates from one node at the other's identifier, reporting the
// write-coalescing factor (frames per vectored write) and delivered
// frames/sec as benchmark extras.
func benchLoopbackThroughput(b *testing.B) {
	space := dht.NewSpace(16)
	ids := []dht.Key{10_000, 40_000}
	nodes := make([]*transport.Node, len(ids))
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = space
		tc.StabilizeEvery = 50_000
		tc.FixFingersEvery = 50_000
		tc.QueueLen = 4096
		n, err := transport.New(tc)
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	nodes[0].Create()
	if err := nodes[1].Join(nodes[0].Addr(), 10*time.Second); err != nil {
		b.Fatal(err)
	}
	if err := waitTwoNodeRing(nodes, ids); err != nil {
		b.Fatal(err)
	}

	var delivered atomic.Int64
	nodes[1].Do(func() {
		nodes[1].SetApp(ids[1], dht.AppFunc(func(dht.Key, *dht.Message) {
			delivered.Add(1)
		}))
	})

	mbr := summary.NewMBR("bench-stream", 1, summary.Feature{0.1, -0.2, 0.3, 0.05})
	mbr.Extend(summary.Feature{0.15, -0.1, 0.25, 0.0})
	mbr.Created = 1_000_000
	mbr.Expiry = 6_000_000
	payload := core.MBRUpdate{MBR: mbr}

	dropped := func() int64 { return nodes[0].Dropped() + nodes[1].Dropped() }
	const chunk = 256
	sent := 0
	start := time.Now()
	b.ResetTimer()
	for sent < b.N {
		k := min(chunk, b.N-sent)
		nodes[0].Do(func() {
			for i := 0; i < k; i++ {
				msg := &dht.Message{Kind: core.KindMBR, Payload: payload}
				nodes[0].Send(ids[0], ids[1], msg)
			}
		})
		sent += k
		for delivered.Load()+dropped() < int64(sent) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	b.StopTimer()
	frames, flushes := nodes[0].WriteStats()
	if flushes > 0 {
		b.ReportMetric(float64(frames)/float64(flushes), "frames/write")
	}
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(delivered.Load())/el, "frames/sec")
	}
}

// waitTwoNodeRing polls until both nodes see each other as successor and
// predecessor.
func waitTwoNodeRing(nodes []*transport.Node, ids []dht.Key) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		converged := true
		for i, n := range nodes {
			other := ids[1-i]
			info := n.Ring()
			if len(info.SuccList) == 0 || info.SuccList[0].ID != other ||
				info.Pred == nil || info.Pred.ID != other {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("two-node ring did not converge within 15s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
