// Command adidas-bench regenerates the tables and figures of the paper's
// evaluation (§V) and the ablations described in DESIGN.md.
//
// Usage:
//
//	adidas-bench -exp all
//	adidas-bench -exp fig6a -sizes 50,100,200,300,500
//	adidas-bench -exp fig7b
//	adidas-bench -exp ablation-baselines -sizes 50,100 -measure 60
//	adidas-bench -bench BENCH_1.json     # machine-readable figure benchmarks
//	adidas-bench -parallel BENCH_4.json  # data-plane parallelism (GOMAXPROCS 1/4/8)
//	adidas-bench -ops BENCH_5.json       # continuous-query operator throughput
//	adidas-bench -loadskew BENCH_6.json -maxskew 3  # load spread under Zipf skew
//	adidas-bench -substrates BENCH_7.json -maxhopsratio 1  # chord vs koorde head-to-head
//	adidas-bench -substrates BENCH_8.json -maxhopsratio 1 -maxmaintratio 1.3 -maxtailratio 1.15
//	adidas-bench -exp fig6a -substrate koorde            # figure rows on another ring machine
//	adidas-bench -compare old.json,new.json
//	adidas-bench -compare BENCH_3.json,BENCH_4.json -minratio store-match@4=1.3
//
// Experiments: table1, fig3b, fig6a, fig6b, fig7a, fig7b, fig8, cqe, loadskew,
// ablation-multicast, ablation-baselines, ablation-batch,
// ablation-adaptive, ablation-hierarchy, ablation-resilience,
// ablation-treehops, ablation-bandwidth, ablation-substrates,
// headtohead, all.
//
// Every experiment is deterministic for a fixed -seed. Sweeps run one
// simulation per parameter point, in parallel across -workers goroutines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"streamdex/internal/experiments"
	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see package doc)")
		sizes    = flag.String("sizes", "", "comma-separated node counts (default: the paper's)")
		seed     = flag.Int64("seed", 1, "root random seed")
		warmup   = flag.Int("warmup", 40, "warm-up interval, seconds of virtual time")
		measure  = flag.Int("measure", 100, "measurement interval, seconds of virtual time")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		radius   = flag.Float64("radius", 0.1, "similarity query radius for load/hop experiments")
		bench    = flag.String("bench", "", "time the figure pipelines and write JSON results to this path ('-' = stdout)")
		parallel = flag.String("parallel", "", "measure data-plane parallelism (GOMAXPROCS 1 vs 4) and write JSON to this path ('-' = stdout)")
		opsBench = flag.String("ops", "", "measure continuous-query operator throughput (sub-match, sketch-fold, loopback-sub) and write JSON to this path ('-' = stdout)")
		skewOut  = flag.String("loadskew", "", "measure per-node load spread under Zipf query skew, machinery off vs on, and write JSON to this path ('-' = stdout)")
		maxSkew  = flag.Float64("maxskew", 0, "with -loadskew: fail unless the machinery-on p99/mean load ratio at the smallest size is at most this")
		subsOut  = flag.String("substrates", "", "run the chord-vs-koorde routing-machine head-to-head and write JSON to this path ('-' = stdout)")
		maxHops  = flag.Float64("maxhopsratio", 0, "with -substrates: fail unless koorde's mean lookup hops are strictly below this ratio of chord's at the largest size")
		maxMaint = flag.Float64("maxmaintratio", 0, "with -substrates: fail if koorde's maintenance bandwidth exceeds this ratio of chord's at the largest size")
		maxTail  = flag.Float64("maxtailratio", 0, "with -substrates: fail if koorde's multicast last-delivery time exceeds this ratio of chord's at the largest size")
		machine  = flag.String("substrate", "", "routing substrate for the figure experiments: a registered ring machine (chord, koorde) or pastry; empty = chord")
		minSpeed = flag.Float64("minspeedup", 0, "with -parallel: fail unless match/loopback speed up by this factor (skipped when the host has fewer cores than procs)")
		compare  = flag.String("compare", "", "compare two -bench or -parallel reports, given as OLD.json,NEW.json")
		minRatio = flag.String("minratio", "", "with -compare on -parallel reports: fail unless new/old ops/sec meets the floors, e.g. store-match@4=1.3 (rows stand down on hosts with fewer cores than procs)")
	)
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare, *minRatio); err != nil {
			fmt.Fprintf(os.Stderr, "adidas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *parallel != "" {
		if err := runParallelBench(*parallel, *seed, *minSpeed); err != nil {
			fmt.Fprintf(os.Stderr, "adidas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *opsBench != "" {
		if err := runOpsBench(*opsBench, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "adidas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *skewOut != "" {
		if err := runSkewBench(*skewOut, *seed, *maxSkew, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "adidas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *subsOut != "" {
		if err := runSubstratesBench(*subsOut, *seed, *maxHops, *maxMaint, *maxTail, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "adidas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *bench != "" {
		if err := runBenchJSON(*bench, *seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "adidas-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	base := workload.DefaultConfig(0)
	base.Seed = *seed
	base.Warmup = sim.Time(*warmup) * sim.Second
	base.Measure = sim.Time(*measure) * sim.Second
	base.Radius = *radius
	base.Substrate = *machine

	if err := run(*exp, *sizes, base, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "adidas-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp, sizesFlag string, base workload.Config, workers int) error {
	paperSizes := experiments.PaperSizes
	overheadSizes := experiments.OverheadSizes
	if sizesFlag != "" {
		parsed, err := parseSizes(sizesFlag)
		if err != nil {
			return err
		}
		paperSizes, overheadSizes = parsed, parsed
	}

	show := func(t *experiments.Table) {
		fmt.Println(t.String())
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		show(experiments.TableI())
		ran = true
	}
	if want("fig3b") {
		show(experiments.Fig3b(128, 3, 20000, base.Seed))
		ran = true
	}
	if want("fig6a") {
		rows, err := experiments.LoadVsNodes(paperSizes, base, workers)
		if err != nil {
			return err
		}
		show(experiments.Fig6a(rows))
		ran = true
	}
	if want("fig6b") {
		d, err := experiments.LoadDistribution(200, 8, base)
		if err != nil {
			return err
		}
		show(experiments.Fig6b(d))
		ran = true
	}
	if want("fig7a") {
		rows, err := experiments.Overhead(overheadSizes, base, 0.1, workers)
		if err != nil {
			return err
		}
		show(experiments.Fig7("a", 0.1, rows))
		ran = true
	}
	if want("fig7b") {
		rows, err := experiments.Overhead(overheadSizes, base, 0.2, workers)
		if err != nil {
			return err
		}
		show(experiments.Fig7("b", 0.2, rows))
		ran = true
	}
	if want("fig8") {
		rows, err := experiments.Hops(paperSizes, base, workers)
		if err != nil {
			return err
		}
		show(experiments.Fig8(rows))
		ran = true
	}
	if want("cqe") {
		rows, err := experiments.CQELoad(overheadSizes, base, workers)
		if err != nil {
			return err
		}
		show(experiments.FigCQE(rows))
		ran = true
	}
	if want("loadskew") {
		rows, err := experiments.LoadSkew(paperSizes, base, experiments.DefaultSkew, workers)
		if err != nil {
			return err
		}
		show(experiments.FigLoadSkew(experiments.DefaultSkew, rows))
		ran = true
	}
	if want("ablation-multicast") {
		show(experiments.AblationMulticast(base.Substrate, 256, []int{2, 4, 8, 16, 32, 64}))
		ran = true
	}
	if want("ablation-baselines") {
		sizes := overheadSizes
		if exp == "all" {
			sizes = []int{50, 100, 200} // the strawmen get expensive fast
		}
		rows, err := experiments.Baselines(sizes, base, workers)
		if err != nil {
			return err
		}
		show(experiments.AblationBaselines(rows))
		ran = true
	}
	if want("ablation-batch") {
		show(experiments.AblationBatch(experiments.BatchSweep([]int{1, 5, 10, 25, 50}, base.Radius, base.Seed), base.Radius))
		ran = true
	}
	if want("ablation-adaptive") {
		show(experiments.AblationAdaptive(base.Substrate, experiments.AdaptiveComparison(32, base.Radius, base.Seed), base.Radius))
		ran = true
	}
	if want("ablation-hierarchy") {
		radii := []float64{0.05, 0.1, 0.2, 0.4, 0.8}
		show(experiments.AblationHierarchy(base.Substrate, 512, experiments.HierarchyComparison(512, radii, 16)))
		ran = true
	}
	if want("ablation-resilience") {
		rows, err := experiments.Resilience(100, []int{0, 5, 10, 20}, base, workers)
		if err != nil {
			return err
		}
		show(experiments.AblationResilience(rows))
		ran = true
	}
	if want("ablation-treehops") {
		rows, err := experiments.TreeHops(paperSizes, base, workers)
		if err != nil {
			return err
		}
		show(experiments.AblationTreeHops(rows))
		ran = true
	}
	if want("ablation-bandwidth") {
		rows, err := experiments.Bandwidth(100, []int{1, 5, 10, 25, 50}, base, workers)
		if err != nil {
			return err
		}
		show(experiments.AblationBandwidth(100, rows))
		ran = true
	}
	if want("ablation-substrates") {
		sizes := []int{100, 300}
		rows, err := experiments.Substrates(sizes, base, workers)
		if err != nil {
			return err
		}
		show(experiments.AblationSubstrates(rows))
		ran = true
	}
	if want("headtohead") {
		rows, err := experiments.HeadToHead(paperSizes, base.Seed, 0, workers)
		if err != nil {
			return err
		}
		show(experiments.HeadToHeadTable(rows))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
