#!/usr/bin/env bash
# CI gate for streamdex. Runs the full hygiene + correctness + smoke-perf
# pipeline; any failure fails the script. Usage: scripts/ci.sh
#
#   1. gofmt      — no unformatted files
#   2. go vet     — static checks
#   3. go build   — everything compiles
#   4. go test -race   — full suite under the race detector (also covers
#                        the serial-vs-parallel determinism regression)
#   5. churn (race)    — scripted join/leave/crash convergence of the
#                        shared Chord protocol machine
#   6. fuzz smoke      — short native-fuzz run of the wire codec decoder
#                        (seeded with every payload kind, middleware and
#                        ring-control alike), catching panics / runaway
#                        allocations on malformed frames
#   7. smoke bench     — BENCH_FAST=1 figure benchmarks, one iteration,
#                        so an accidental O(N) regression in the hot paths
#                        shows up as a CI timeout / obvious slowdown
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== control-plane churn (race) =="
# Deterministic scripted churn over the shared Chord protocol machine:
# joins, a graceful leave, adjacent crashes and a late join must all
# re-converge to the live-membership oracle. Virtual-time determinism
# makes any race found here reproducible.
go test -race -count=1 -run 'TestChurn' ./internal/chord/protocol

echo "== live transport loopback (race) =="
# Explicitly exercise the 5-node TCP loopback cluster against the
# simulator under the race detector, so the live data path stays covered
# even if the suite above ever starts running in -short mode.
go test -race -count=1 -run 'TestLoopbackClusterMatchesSimulator|TestRingConvergence' \
    ./internal/transport

echo "== fuzz smoke (FuzzUnmarshal, 10s) =="
# Mutate frames against the codec v2 decoder for a few seconds. The corpus
# seeds every registered packed payload kind plus malformed shapes; any
# panic or round-trip asymmetry fails CI. FUZZ_TIME overrides the budget.
go test -run '^$' -fuzz 'FuzzUnmarshal' -fuzztime "${FUZZ_TIME:-10s}" ./internal/wire

echo "== smoke bench (BENCH_FAST=1) =="
BENCH_FAST=1 go test -run '^$' \
    -bench 'BenchmarkTable1Workload$|BenchmarkFig6aLoad$|BenchmarkFig7aOverhead$|BenchmarkFig8Hops$' \
    -benchmem -benchtime 1x .
BENCH_FAST=1 go test -run '^$' -bench 'SlidingDFTPush' -benchtime 100x ./internal/dsp

echo "CI OK"
