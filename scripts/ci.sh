#!/usr/bin/env bash
# CI gate for streamdex. Runs the full hygiene + correctness + smoke-perf
# pipeline; any failure fails the script. Usage: scripts/ci.sh
#
#   1. gofmt      — no unformatted files
#   2. go vet     — static checks
#   3. go build   — everything compiles
#   4. go test -race   — full suite under the race detector (also covers
#                        the serial-vs-parallel determinism regression)
#   5. churn (race)    — scripted join/leave/crash convergence of the
#                        shared Chord protocol machine
#   6. fuzz smoke      — short native-fuzz run of the wire codec decoder
#                        (seeded with every payload kind, middleware and
#                        ring-control alike), catching panics / runaway
#                        allocations on malformed frames
#   7. parallel smoke  — GOMAXPROCS=4 loopback data-plane test under the
#                        race detector, then the BENCH_3 parallelism rows
#                        (the 2.5x speedup floor is enforced only on hosts
#                        with >= 4 real cores)
#   8. udp fuzz smoke  — short native-fuzz run of the UDP datagram decode
#                        path (type byte + wire body, no length prefix),
#                        seeded with every packed payload kind
#   9. operator parity (race) — the three continuous-query operators
#                        (subscription, aggregate, top-k) on a live 5-node
#                        TCP cluster must reproduce the simulator's answer
#                        sets, and a subscription must survive the scripted
#                        crash of every covering node
#  10. zero-alloc guards — the lock-free snapshot walk, the candidate
#                        append and the arena decode must stay
#                        allocation-free on their steady state
#  11. smoke bench     — BENCH_FAST=1 figure benchmarks, one iteration,
#                        so an accidental O(N) regression in the hot paths
#                        shows up as a CI timeout / obvious slowdown
#  12. bench compare   — fresh BENCH_FAST JSON report diffed against the
#                        committed BENCH_2.json, benchstat-style
#                        (informational), then the committed BENCH_3 vs
#                        BENCH_4 parallelism reports with a 1.3x
#                        store-match@4 floor, then the committed BENCH_4 vs
#                        BENCH_5 operator reports with a 0.9x
#                        store-match@4 floor proving the operator hooks
#                        did not tax the similarity path (ratio floors are
#                        enforced only on hosts with >= 4 real cores in
#                        both reports)
#  13. loadskew gate   — fast-tier Zipf(1.1) load-skew run; the balanced
#                        arm (vnodes + covering-range replication) must
#                        keep p99/mean per-node load under the bound AND
#                        beat the unbalanced arm, then the committed
#                        BENCH_5 vs BENCH_6 reports with a 0.9x
#                        store-match@4 floor proving the load-balancing
#                        hooks did not tax the un-replicated data plane
#  14. koorde churn + parity (race) — deterministic scripted churn of the
#                        Koorde de Bruijn machine (joins, leave, crashes,
#                        late join must re-converge to the oracle), and
#                        sim-vs-live parity of the same machine on a real
#                        TCP cluster, both under the race detector
#  15. substrates gate  — fast-tier chord-vs-koorde head-to-head; Koorde's
#                        mean lookup hops must be strictly below Chord's
#                        at the largest size (the de Bruijn claim), its
#                        maintenance bandwidth within 1.3x Chord's
#                        (piggybacked pointer repair), and its tree-
#                        multicast last delivery within 1.15x Chord's
#                        (de Bruijn-aware arc splits), then the committed
#                        BENCH_6 vs BENCH_7 reports with a 0.9x
#                        store-match@4 floor proving the substrate-
#                        neutral control plane did not tax the data plane
#  16. koorde fast path — the committed BENCH_7 vs BENCH_8 reports with a
#                        0.9x store-match@4 floor proving the fast-path
#                        work (repair piggyback, split multicast) did not
#                        tax the data plane either
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== control-plane churn (race) =="
# Deterministic scripted churn over the shared Chord protocol machine:
# joins, a graceful leave, adjacent crashes and a late join must all
# re-converge to the live-membership oracle. Virtual-time determinism
# makes any race found here reproducible.
go test -race -count=1 -run 'TestChurn' ./internal/chord/protocol

echo "== live transport loopback (race) =="
# Explicitly exercise the 5-node TCP loopback cluster against the
# simulator under the race detector, so the live data path stays covered
# even if the suite above ever starts running in -short mode.
go test -race -count=1 -run 'TestLoopbackClusterMatchesSimulator|TestRingConvergence' \
    ./internal/transport

echo "== fuzz smoke (FuzzUnmarshal, 10s) =="
# Mutate frames against the codec v2 decoder for a few seconds. The corpus
# seeds every registered packed payload kind — including the continuous-
# query engine's sketch/subscription/aggregate/top-k payloads — plus
# malformed shapes; any panic or round-trip asymmetry fails CI. FUZZ_TIME
# overrides the budget.
go test -run '^$' -fuzz 'FuzzUnmarshal' -fuzztime "${FUZZ_TIME:-10s}" ./internal/wire

echo "== parallel data plane: GOMAXPROCS=4 loopback smoke (race) =="
# Oversubscription is fine: on a single-core host this still drives every
# shard lock, pool hand-off and completion fence, just without speedup.
GOMAXPROCS=4 go test -race -count=1 -run 'TestParallelLoopbackSmoke' ./internal/transport

echo "== parallel data plane: BENCH_3 parallelism rows =="
BENCH_FAST=1 go run ./cmd/adidas-bench -parallel "${TMPDIR:-/tmp}/streamdex-bench3.json" -minspeedup 2.5

echo "== udp fuzz smoke (FuzzDatagramDecode, 10s) =="
# Mutate raw datagrams (type byte + body) against the connectionless
# decode path. Seeds cover every packed payload kind (CQE payloads
# included) over both app frame types plus control/unknown shapes that
# must be rejected, not crash.
go test -run '^$' -fuzz 'FuzzDatagramDecode' -fuzztime "${FUZZ_TIME:-10s}" ./internal/transport

echo "== continuous-query operator parity (race) =="
# Sim-vs-live parity for the subscription, aggregate and top-k operators
# on a real 5-node TCP cluster, plus the scripted churn test: crash every
# node covering a standing subscription and require detections to resume
# from freshly re-homed registrations.
go test -race -count=1 -run 'TestOperatorParitySimVsLive' ./internal/transport
go test -race -count=1 -run 'TestSubscriptionSurvivesCoveringNodeCrash' ./internal/core

echo "== zero-alloc guards (snapshot walk, candidate append, arena decode) =="
# The lock-free read path is only lock-free if it also stays off the
# allocator: a single alloc in the walk re-introduces GC coordination.
go test -count=1 \
    -run 'TestShardedStoreZeroAllocWalk|TestAppendCandidatesZeroAllocs|TestArenaDecodeZeroAllocAmortized' \
    ./internal/core

echo "== smoke bench (BENCH_FAST=1) =="
BENCH_FAST=1 go test -run '^$' \
    -bench 'BenchmarkTable1Workload$|BenchmarkFig6aLoad$|BenchmarkFig7aOverhead$|BenchmarkFig8Hops$' \
    -benchmem -benchtime 1x .
BENCH_FAST=1 go test -run '^$' -bench 'SlidingDFTPush' -benchtime 100x ./internal/dsp

echo "== bench comparison vs committed BENCH_2.json =="
# Old-vs-new deltas against the committed fast-mode report. Informational:
# wall-clock noise on shared CI runners is not a merge gate.
BENCH_FAST=1 go run ./cmd/adidas-bench -bench "${TMPDIR:-/tmp}/streamdex-bench-new.json"
go run ./cmd/adidas-bench -compare "BENCH_2.json,${TMPDIR:-/tmp}/streamdex-bench-new.json"

echo "== parallelism comparison: BENCH_3 vs BENCH_4 =="
# The committed multi-core reports, diffed row by row. The 1.3x
# store-match@4 floor only binds when both reports come from hosts with
# >= 4 real cores; under-cored runs print the table and stand down.
go run ./cmd/adidas-bench -compare "BENCH_3.json,BENCH_4.json" -minratio store-match@4=1.3

echo "== operator bench comparison: BENCH_4 vs BENCH_5 =="
# The committed data-plane report against the committed operator report.
# The shared store rows prove the CQE hooks (per-MBR predicate fan-out,
# sketch publication) did not tax the similarity path: a 0.9x floor on
# store-match@4 allows noise but fails a real regression. The floor only
# binds when both reports come from hosts with >= 4 real cores.
go run ./cmd/adidas-bench -compare "BENCH_4.json,BENCH_5.json" -minratio store-match@4=0.9

echo "== load-skew gate: fast-tier Zipf(1.1) p99/mean bound =="
# Deterministic (seeded virtual-time) 50-node Zipf(1.1) run of both arms.
# -maxskew fails CI if the balanced arm (vnodes=4, replicas=3) exceeds
# 2x p99/mean per-node load or fails to improve on the unbalanced arm.
BENCH_FAST=1 go run ./cmd/adidas-bench -loadskew "${TMPDIR:-/tmp}/streamdex-bench6.json" -maxskew 2

echo "== load-balancing bench comparison: BENCH_5 vs BENCH_6 =="
# The committed operator report against the committed load-skew report.
# The shared store rows prove the default-off balancing hooks (replica
# tail, load gossip, admission check) did not tax the un-replicated
# similarity path. The floor only binds when both reports come from
# hosts with >= 4 real cores.
go run ./cmd/adidas-bench -compare "BENCH_5.json,BENCH_6.json" -minratio store-match@4=0.9

echo "== koorde churn + sim-vs-live parity (race) =="
# The second routing machine through the same wringer as Chord:
# deterministic scripted churn (joins, a graceful leave, adjacent
# crashes, a late join) must re-converge the de Bruijn pointers to the
# live-membership oracle, and the live TCP cluster must agree with the
# simulator on every successor resolution.
go test -race -count=1 -run 'TestKoordeChurnReconverges' ./internal/koorde
go test -race -count=1 -run 'TestKoordeParitySimVsLive' ./internal/transport

echo "== substrates gate: fast-tier chord-vs-koorde hops/maint/tail =="
# Deterministic (seeded virtual-time) head-to-head of the two registered
# ring machines, churn phase included. Three hard gates at the largest
# size: -maxhopsratio 1.0 (Koorde's mean lookup hops strictly below
# Chord's — the de Bruijn fewer-hops-per-table-entry claim),
# -maxmaintratio 1.3 (piggybacked pointer repair keeps Koorde's
# maintenance bandwidth within 1.3x Chord's), and -maxtailratio 1.15
# (de Bruijn-aware arc splits keep the tree-multicast last delivery
# within 1.15x Chord's).
BENCH_FAST=1 go run ./cmd/adidas-bench -substrates "${TMPDIR:-/tmp}/streamdex-bench8.json" \
    -maxhopsratio 1.0 -maxmaintratio 1.3 -maxtailratio 1.15

echo "== substrates bench comparison: BENCH_6 vs BENCH_7 =="
# The committed load-skew report against the committed substrates report.
# The shared store rows prove the overlay indirection (machine registry,
# interface dispatch on the control plane) did not tax the similarity
# path. The floor only binds when both reports come from hosts with
# >= 4 real cores.
go run ./cmd/adidas-bench -compare "BENCH_6.json,BENCH_7.json" -minratio store-match@4=0.9

echo "== koorde fast-path bench comparison: BENCH_7 vs BENCH_8 =="
# The committed substrates report against the committed fast-path report.
# The shared store rows prove the repair piggyback and split-multicast
# work did not tax the similarity path. The floor only binds when both
# reports come from hosts with >= 4 real cores.
go run ./cmd/adidas-bench -compare "BENCH_7.json,BENCH_8.json" -minratio store-match@4=0.9

echo "CI OK"
