package streamdex

// One benchmark per table and figure of the paper's evaluation (§V), plus
// the ablations of DESIGN.md. Each benchmark regenerates its table/figure
// rows with the real simulation pipeline and logs them (run with -v to see
// the tables):
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig6aLoad -v
//
// The full paper-scale sweeps take a few seconds per iteration, so the
// default -benchtime leaves them at one iteration. BENCH_FAST=1 in the
// environment shrinks the sweeps for quick smoke runs.

import (
	"os"
	"testing"

	"streamdex/internal/experiments"
	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

// benchBase returns the Table I workload configuration used by all figure
// benchmarks. The measurement window is shortened from the interactive
// default to keep a full `go test -bench=.` run in minutes; shapes are
// unaffected (verified by the experiments tests).
func benchBase() workload.Config {
	cfg := workload.DefaultConfig(0)
	cfg.Warmup = 20 * sim.Second
	cfg.Measure = 60 * sim.Second
	if fastBench() {
		cfg.Warmup = 10 * sim.Second
		cfg.Measure = 20 * sim.Second
	}
	return cfg
}

func fastBench() bool { return os.Getenv("BENCH_FAST") != "" }

func benchSizes() []int {
	if fastBench() {
		return []int{25, 50}
	}
	return experiments.PaperSizes
}

func benchOverheadSizes() []int {
	if fastBench() {
		return []int{25, 50}
	}
	return experiments.OverheadSizes
}

// BenchmarkTable1Workload regenerates Table I and measures the cost of one
// full workload construction + measurement at 50 nodes.
func BenchmarkTable1Workload(b *testing.B) {
	b.Log("\n" + experiments.TableI().String())
	cfg := benchBase()
	cfg.Nodes = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := workload.RunOnce(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.TotalLoad, "msgs/node/s")
	}
}

// BenchmarkFig3bFourierLocality regenerates the Fourier-locality analysis
// of Fig. 3(b) on a synthetic host-load trace.
func BenchmarkFig3bFourierLocality(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.FourierLocality(128, 3, 20000, 1)
		ratio = r.Ratio
	}
	b.ReportMetric(ratio, "consec/random-dist")
	b.Log("\n" + experiments.Fig3b(128, 3, 20000, 1).String())
}

// BenchmarkFig6aLoad regenerates Fig. 6(a): per-node message load by
// component across system sizes.
func BenchmarkFig6aLoad(b *testing.B) {
	var rows []experiments.LoadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.LoadVsNodes(benchSizes(), benchBase(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Total, "msgs/node/s@max-N")
	b.ReportMetric(last.MBRsInTransit, "mbr-transit@max-N")
	b.Log("\n" + experiments.Fig6a(rows).String())
}

// BenchmarkFig6bLoadDistribution regenerates Fig. 6(b): the load histogram
// at 200 nodes.
func BenchmarkFig6bLoadDistribution(b *testing.B) {
	nodes := 200
	if fastBench() {
		nodes = 50
	}
	var d experiments.Distribution
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.LoadDistribution(nodes, 8, benchBase())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Quantiles[3]/d.Quantiles[0], "max/median-load")
	b.Log("\n" + experiments.Fig6b(d).String())
}

// BenchmarkFig7aOverhead regenerates Fig. 7(a): message overhead per input
// event at query radius 0.1.
func BenchmarkFig7aOverhead(b *testing.B) {
	benchOverhead(b, "a", 0.1)
}

// BenchmarkFig7bOverhead regenerates Fig. 7(b): the radius-0.2 variant.
func BenchmarkFig7bOverhead(b *testing.B) {
	benchOverhead(b, "b", 0.2)
}

func benchOverhead(b *testing.B, label string, radius float64) {
	var rows []experiments.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Overhead(benchOverheadSizes(), benchBase(), radius, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.QueryMessages, "query-range-msgs/query@max-N")
	b.Log("\n" + experiments.Fig7(label, radius, rows).String())
}

// BenchmarkFig8Hops regenerates Fig. 8: hops per message class across
// system sizes.
func BenchmarkFig8Hops(b *testing.B) {
	var rows []experiments.HopsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Hops(benchSizes(), benchBase(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.QueryInternal, "internal-query-hops@max-N")
	b.ReportMetric(last.MBR, "mbr-hops@max-N")
	b.Log("\n" + experiments.Fig8(rows).String())
}

// BenchmarkAblationRangeMulticast regenerates ablation A1: sequential vs.
// bidirectional range multicast delay.
func BenchmarkAblationRangeMulticast(b *testing.B) {
	widths := []int{2, 4, 8, 16, 32, 64}
	var rows []experiments.MulticastRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RangeMulticast("", 256, widths)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.SeqDelay)/float64(last.BidiDelay), "seq/bidi-delay")
	b.Log("\n" + experiments.AblationMulticast("", 256, widths).String())
}

// BenchmarkAblationBaselines regenerates ablation A2: the distributed
// index against the centralized and flooding strawmen.
func BenchmarkAblationBaselines(b *testing.B) {
	sizes := []int{50, 100}
	if fastBench() {
		sizes = []int{25}
	}
	var rows []experiments.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Baselines(sizes, benchBase(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiments.AblationBaselines(rows).String())
}

// BenchmarkAblationBatchSweep regenerates ablation A3: the MBR batching
// factor trade-off.
func BenchmarkAblationBatchSweep(b *testing.B) {
	betas := []int{1, 5, 10, 25, 50}
	var rows []experiments.BatchRow
	for i := 0; i < b.N; i++ {
		rows = experiments.BatchSweep(betas, 0.1, 1)
	}
	b.ReportMetric(rows[len(rows)-1].FalsePositive, "fp-rate@beta50")
	b.Log("\n" + experiments.AblationBatch(rows, 0.1).String())
}

// BenchmarkAblationAdaptive regenerates ablation A4: fixed vs. adaptive
// MBR precision.
func BenchmarkAblationAdaptive(b *testing.B) {
	var rows []experiments.AdaptiveRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AdaptiveComparison(32, 0.1, 1)
	}
	b.Log("\n" + experiments.AblationAdaptive("", rows, 0.1).String())
}

// BenchmarkAblationHierarchy regenerates ablation A5: flat range multicast
// vs. the cluster-leader hierarchy for wide queries.
func BenchmarkAblationHierarchy(b *testing.B) {
	radii := []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	var rows []experiments.HierarchyRow
	for i := 0; i < b.N; i++ {
		rows = experiments.HierarchyComparison(512, radii, 16)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.FlatMsgs)/float64(max(1, last.HierMsgs)), "flat/hier-msgs@r0.8")
	b.Log("\n" + experiments.AblationHierarchy("", 512, rows).String())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkAblationTreeHops regenerates ablation A9: Fig. 8's internal-hop
// bottleneck under sequential walk vs. finger-tree dissemination.
func BenchmarkAblationTreeHops(b *testing.B) {
	sizes := benchSizes()
	var rows []experiments.TreeHopsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TreeHops(sizes, benchBase(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.SeqQueryInternal/last.TreeQueryInternal, "seq/tree-hops@max-N")
	b.Log("\n" + experiments.AblationTreeHops(rows).String())
}

// BenchmarkAblationResilience regenerates ablation A6: service continuity
// under node failures with ring self-repair.
func BenchmarkAblationResilience(b *testing.B) {
	nodes, fails := 100, []int{0, 5, 10}
	if fastBench() {
		nodes, fails = 25, []int{0, 3}
	}
	var rows []experiments.ResilienceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Resilience(nodes, fails, benchBase(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].Dropped), "dropped@max-fail")
	b.Log("\n" + experiments.AblationResilience(rows).String())
}

// BenchmarkAblationBandwidth regenerates ablation A8: serialized update
// volume, individual feature propagation vs. MBR batching.
func BenchmarkAblationBandwidth(b *testing.B) {
	nodes, betas := 100, []int{1, 5, 25}
	if fastBench() {
		nodes, betas = 24, []int{1, 25}
	}
	var rows []experiments.BandwidthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Bandwidth(nodes, betas, benchBase(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MBRBytes/rows[len(rows)-1].MBRBytes, "beta1/beta25-bytes")
	b.Log("\n" + experiments.AblationBandwidth(nodes, rows).String())
}

// BenchmarkAblationSubstrates regenerates ablation A7: the same middleware
// over Chord and Pastry-style prefix routing.
func BenchmarkAblationSubstrates(b *testing.B) {
	sizes := []int{100, 300}
	if fastBench() {
		sizes = []int{25}
	}
	var rows []experiments.SubstrateRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Substrates(sizes, benchBase(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiments.AblationSubstrates(rows).String())
}

// BenchmarkClusterEndToEnd measures the facade: build a 32-node cluster
// with one stream per node, run 30 virtual seconds with a live query.
func BenchmarkClusterEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(ClusterOptions{Nodes: 32, WindowSize: 64, BatchFactor: 5, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		nodes := c.Nodes()
		for j, id := range nodes {
			gen := walkGen(int64(j))
			if err := c.AddStreamPrefilled(id, nodeStreamName(j), gen, 200_000_000); err != nil {
				b.Fatal(err)
			}
		}
		c.Run(10_000_000_000) // 10 virtual seconds
		if _, err := c.SimilarityQueryToStream(nodes[0], nodeStreamName(0), 0.2, 20_000_000_000); err != nil {
			b.Fatal(err)
		}
		c.Run(20_000_000_000)
	}
}

func nodeStreamName(i int) string {
	return "s" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func walkGen(seed int64) Generator {
	r := sim.NewRand(seed)
	x := 500.0
	return GeneratorFunc(func() float64 {
		x += r.Uniform(-1, 1)
		return x
	})
}
