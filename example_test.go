package streamdex_test

import (
	"fmt"
	"sort"
	"time"

	"streamdex"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

// Example indexes two identical streams planted among noise and finds the
// pair with a continuous similarity query — the library's core loop in a
// dozen lines. Output is deterministic because the whole system runs on a
// seeded virtual clock.
func Example() {
	cluster, err := streamdex.NewCluster(streamdex.ClusterOptions{
		Nodes:       12,
		WindowSize:  64,
		BatchFactor: 2, // tight summaries so the tight radius below is selective
		PushPeriod:  time.Second,
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}
	nodes := cluster.Nodes()

	// Two data centers observe the same phenomenon...
	cluster.AddStreamPrefilled(nodes[0], "twin-a", stream.DefaultRandomWalk(sim.NewRand(99)), 100*time.Millisecond)
	cluster.AddStreamPrefilled(nodes[7], "twin-b", stream.DefaultRandomWalk(sim.NewRand(99)), 100*time.Millisecond)
	// ...and two observe unrelated ones.
	cluster.AddStreamPrefilled(nodes[3], "noise-1", stream.DefaultRandomWalk(sim.NewRand(1)), 100*time.Millisecond)
	cluster.AddStreamPrefilled(nodes[9], "noise-2", stream.DefaultRandomWalk(sim.NewRand(2)), 100*time.Millisecond)
	cluster.Run(10 * time.Second)

	// "What currently looks like twin-a?" — tight radius: only the twin.
	qid, err := cluster.SimilarityQueryToStream(nodes[0], "twin-a", 0.03, 30*time.Second)
	if err != nil {
		panic(err)
	}
	cluster.Run(15 * time.Second)

	matched := cluster.MatchedStreams(qid)
	sort.Strings(matched)
	fmt.Println(matched)
	// Output: [twin-a twin-b]
}

// ExampleCluster_AverageQuery subscribes to a windowed average — the
// paper's "average closing price for the last month" — answered from the
// stream's DFT summary and pushed periodically.
func ExampleCluster_AverageQuery() {
	cluster, err := streamdex.NewCluster(streamdex.ClusterOptions{
		Nodes:       8,
		WindowSize:  32,
		BatchFactor: 5,
		PushPeriod:  time.Second,
		Seed:        3,
	})
	if err != nil {
		panic(err)
	}
	nodes := cluster.Nodes()
	// A constant stream makes the expected average obvious.
	cluster.AddStreamPrefilled(nodes[2], "steady",
		streamdex.GeneratorFunc(func() float64 { return 42 }), 100*time.Millisecond)
	cluster.Run(5 * time.Second)

	qid, err := cluster.AverageQuery(nodes[6], "steady", 8, 10*time.Second)
	if err != nil {
		panic(err)
	}
	cluster.Run(6 * time.Second)
	vals := cluster.Values(qid)
	fmt.Printf("pushes=%t last=%.1f\n", len(vals) > 0, vals[len(vals)-1].Value)
	// Output: pushes=true last=42.0
}
